(* Tests for the multicore execution engine: the domain pool, the
   order-preserving parallel combinators, the deterministic sharder, the
   thread-safe memo cache, and the metrics recorder.  The central claim
   under test is the determinism contract: every parallel path produces
   results identical to the sequential path at every pool size. *)

module Pool = Search_exec.Pool
module Par = Search_exec.Par
module Shard = Search_exec.Shard
module Memo = Search_exec.Memo
module Metrics = Search_exec.Metrics
module Prng = Search_numerics.Prng
module E = Search_numerics.Search_error
module F = Search_bounds.Formulas
module R = Search_strategy.Randomized

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-12))

(* every pool-size-sensitive test runs at these sizes; 1 must spawn no
   domain (pure helping), 8 oversubscribes this container on purpose *)
let pool_sizes = [ 1; 2; 8 ]

let at_each_size name f =
  List.iter
    (fun jobs -> Pool.with_pool ~jobs (fun pool -> f ~jobs pool))
    pool_sizes;
  ignore name

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_await_value () =
  at_each_size "await" @@ fun ~jobs pool ->
  let p = Pool.async pool (fun () -> 6 * 7) in
  check_int (Printf.sprintf "value at jobs=%d" jobs) 42 (Pool.await p)

let test_pool_ordering () =
  at_each_size "ordering" @@ fun ~jobs pool ->
  let promises = List.init 50 (fun i -> Pool.async pool (fun () -> i * i)) in
  let results = List.map Pool.await promises in
  check_bool
    (Printf.sprintf "results in submission order at jobs=%d" jobs)
    true
    (results = List.init 50 (fun i -> i * i))

exception Boom of int

let test_pool_exception_propagation () =
  at_each_size "exceptions" @@ fun ~jobs pool ->
  let p = Pool.async pool (fun () -> raise (Boom 17)) in
  (match Pool.await p with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n ->
      check_int (Printf.sprintf "payload at jobs=%d" jobs) 17 n);
  (* the same promise re-raises on every await *)
  (match Pool.await p with
  | _ -> Alcotest.fail "expected Boom again"
  | exception Boom n -> check_int "payload again" 17 n);
  (* and the pool survives the failure *)
  check_int "pool still works" 5 (Pool.await (Pool.async pool (fun () -> 5)))

let test_pool_nested_submit () =
  at_each_size "nested" @@ fun ~jobs pool ->
  (* tasks that themselves fan out on the same pool: the helping await
     makes this deadlock-free even at jobs = 1 *)
  let outer =
    List.init 8 (fun i ->
        Pool.async pool (fun () ->
            let inner =
              List.init 5 (fun j -> Pool.async pool (fun () -> (10 * i) + j))
            in
            List.fold_left (fun acc p -> acc + Pool.await p) 0 inner))
  in
  let total = List.fold_left (fun acc p -> acc + Pool.await p) 0 outer in
  let expected =
    List.concat_map (fun i -> List.init 5 (fun j -> (10 * i) + j))
      (List.init 8 Fun.id)
    |> List.fold_left ( + ) 0
  in
  check_int (Printf.sprintf "nested sum at jobs=%d" jobs) expected total

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.async pool (fun () -> ()) with
  | _ -> Alcotest.fail "async on shut-down pool must raise"
  | exception E.Error (E.Pool_closed _) -> ()

let test_pool_shutdown_fails_pending () =
  (* a promise still pending at shutdown must not wedge a later await:
     shutdown fails it with Pool_closed.  Submit more tasks than workers,
     with the queue gated so nothing completes before shutdown runs. *)
  let pool = Pool.create ~jobs:1 () in
  let gate = Atomic.make false in
  let slow =
    List.init 4 (fun i ->
        Pool.async pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            i))
  in
  (* let the single worker pick up (at most) the first task, then open
     the gate from a separate domain after shutdown has been called so
     the in-flight task can finish and shutdown's join returns *)
  let opener =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Atomic.set gate true)
  in
  Pool.shutdown pool;
  Domain.join opener;
  let outcomes =
    List.map
      (fun p ->
        match Pool.await p with
        | v -> `Done v
        | exception E.Error (E.Pool_closed _) -> `Abandoned
        | exception e -> `Other (Printexc.to_string e))
      slow
  in
  (* every promise resolved — none wedged; abandoned ones carry
     Pool_closed, and any that ran to completion returned its index *)
  List.iteri
    (fun i o ->
      match o with
      | `Abandoned -> ()
      | `Done v -> check_int (Printf.sprintf "task %d value" i) i v
      | `Other e -> Alcotest.fail ("unexpected exception: " ^ e))
    outcomes;
  check_bool "at least one task was abandoned" true
    (List.exists (fun o -> o = `Abandoned) outcomes)

let test_pool_exception_does_not_wedge_siblings () =
  (* one raising task among many: siblings complete, the pool's mutex is
     not left held, and with_pool joins all domains cleanly *)
  at_each_size "no-wedge" @@ fun ~jobs pool ->
  let mixed =
    List.init 20 (fun i ->
        Pool.async pool (fun () ->
            if i mod 5 = 2 then raise (Boom i) else i * 3))
  in
  let got =
    List.mapi
      (fun i p ->
        match Pool.await p with
        | v -> `Ok v
        | exception Boom n ->
            check_int (Printf.sprintf "boom payload %d" i) i n;
            `Boom)
      mixed
  in
  let expected =
    List.init 20 (fun i -> if i mod 5 = 2 then `Boom else `Ok (i * 3))
  in
  check_bool
    (Printf.sprintf "mixed outcomes exact at jobs=%d" jobs)
    true (got = expected)

(* ------------------------------------------------------------------ *)
(* Par: parallel_map == List.map on the real bench grids *)

(* the T1 grid: closed-form line bounds A(k, f) *)
let t1_grid =
  List.concat_map (fun k -> List.init ((k / 2) + 1) (fun f -> (k, f)))
    [ 2; 3; 4; 5; 6; 7 ]

(* the T3 grid: m-ray bounds A(m, k, f) *)
let t3_grid =
  Shard.grid2 [ 2; 3; 4 ] [ (3, 0); (3, 1); (4, 1); (5, 2) ]
  |> List.map (fun (m, (k, f)) -> (m, k, f))

let test_parallel_map_t1 () =
  let f (k, fl) = F.a_line ~k ~f:fl in
  let expected = List.map f t1_grid in
  at_each_size "t1" @@ fun ~jobs pool ->
  check_bool
    (Printf.sprintf "T1 grid identical at jobs=%d" jobs)
    true
    (Par.parallel_map pool ~f t1_grid = expected)

let test_parallel_map_t3 () =
  let f (m, k, fl) = F.a_mray ~m ~k ~f:fl in
  let expected = List.map f t3_grid in
  at_each_size "t3" @@ fun ~jobs pool ->
  check_bool
    (Printf.sprintf "T3 grid identical at jobs=%d" jobs)
    true
    (Par.parallel_map pool ~f t3_grid = expected);
  check_bool
    (Printf.sprintf "chunked T3 grid identical at jobs=%d" jobs)
    true
    (Par.parallel_map ~chunk:3 pool ~f t3_grid = expected)

let test_parallel_mapi_and_iter () =
  at_each_size "mapi" @@ fun ~jobs pool ->
  let xs = [ "a"; "b"; "c"; "d" ] in
  check_bool
    (Printf.sprintf "mapi at jobs=%d" jobs)
    true
    (Par.parallel_mapi pool ~f:(fun i s -> (i, s)) xs
    = List.mapi (fun i s -> (i, s)) xs);
  let hits = Atomic.make 0 in
  Par.parallel_iter pool ~f:(fun _ -> Atomic.incr hits) xs;
  check_int "iter ran every item" 4 (Atomic.get hits)

let test_parallel_reduce_float_order () =
  (* non-associative float addition: the fold must happen in input
     order, so the sum is bit-identical to the sequential fold *)
  let xs = List.init 200 (fun i -> 1. /. float_of_int (i + 1)) in
  let expected = List.fold_left ( +. ) 0. xs in
  at_each_size "reduce" @@ fun ~jobs pool ->
  let got = Par.parallel_reduce pool ~map:Fun.id ~combine:( +. ) ~init:0. xs in
  check_bool
    (Printf.sprintf "bit-identical float sum at jobs=%d" jobs)
    true (got = expected)

let test_parallel_map_array () =
  at_each_size "array" @@ fun ~jobs pool ->
  let a = Array.init 30 (fun i -> i) in
  check_bool
    (Printf.sprintf "array map at jobs=%d" jobs)
    true
    (Par.parallel_map_array pool ~f:(fun x -> x * 2) a
    = Array.map (fun x -> x * 2) a)

(* ------------------------------------------------------------------ *)
(* Shard *)

let test_shard_prngs_independent_of_jobs () =
  (* the leaves depend only on (root, n); draw a float from each *)
  let root = Prng.make ~seed:99 in
  let draw g = fst (Prng.float g) in
  let leaves = Shard.prngs ~root ~n:6 |> Array.map draw in
  let again = Shard.prngs ~root ~n:6 |> Array.map draw in
  check_bool "leaves reproducible" true (leaves = again);
  (* a prefix of a larger tree matches: leaf i does not depend on n *)
  let wider = Shard.prngs ~root ~n:10 |> Array.map draw in
  check_bool "leaf i independent of n" true
    (Array.to_list leaves = List.filteri (fun i _ -> i < 6)
                               (Array.to_list wider));
  let distinct =
    Array.to_list leaves |> List.sort_uniq Float.compare |> List.length
  in
  check_int "leaves distinct" 6 distinct

let test_shards_balanced () =
  let xs = List.init 10 Fun.id in
  let chunks = Shard.shards ~shards:3 xs in
  check_int "three chunks" 3 (List.length chunks);
  check_bool "concat restores input" true (List.concat chunks = xs);
  let sizes = List.map List.length chunks in
  check_bool "balanced" true (sizes = [ 4; 3; 3 ]);
  check_int "never an empty chunk" 2
    (List.length (Shard.shards ~shards:5 [ 1; 2 ]))

let test_grid2_row_major () =
  check_bool "row-major order" true
    (Shard.grid2 [ 1; 2 ] [ "x"; "y"; "z" ]
    = [ (1, "x"); (1, "y"); (1, "z"); (2, "x"); (2, "y"); (2, "z") ])

let test_sharded_stochastic_jobs_invariant () =
  (* the bench's X2 Monte-Carlo column, in miniature: a fixed 8-shard
     decomposition per beta, each shard drawing from its own split-tree
     leaf, folded in input order.  Identical at jobs = 1 and jobs = 8. *)
  let estimate pool ~beta =
    let root = Prng.make ~seed:20180723 in
    let shard_estimates =
      Shard.sharded_map pool ~root
        ~f:(fun ~prng () -> R.expected_ratio_at ~beta ~x:64. ~samples:32 ~prng)
        (List.init 8 (fun _ -> ()))
    in
    List.fold_left ( +. ) 0. shard_estimates /. 8.
  in
  let sequential = Pool.with_pool ~jobs:1 (fun pool -> estimate pool ~beta:3.5) in
  List.iter
    (fun jobs ->
      let parallel = Pool.with_pool ~jobs (fun pool -> estimate pool ~beta:3.5) in
      check_bool
        (Printf.sprintf "MC estimate bit-identical at jobs=%d" jobs)
        true
        (Int64.equal
           (Int64.bits_of_float sequential)
           (Int64.bits_of_float parallel)))
    pool_sizes;
  check_bool "estimate is sane" true (sequential > 1. && sequential < 20.)

(* ------------------------------------------------------------------ *)
(* Memo *)

let test_memo_caches () =
  let cache = Memo.create () in
  let computes = ref 0 in
  let f k =
    Memo.find_or_add cache k (fun () ->
        incr computes;
        k * k)
  in
  check_int "first" 49 (f 7);
  check_int "second" 49 (f 7);
  check_int "other key" 64 (f 8);
  check_int "computed twice only" 2 !computes;
  let s = Memo.stats cache in
  check_int "entries" 2 s.Memo.entries;
  check_int "hits" 1 s.Memo.hits;
  check_int "misses" 2 s.Memo.misses;
  Memo.clear cache;
  check_int "cleared" 0 (Memo.stats cache).Memo.entries

let test_memo_concurrent () =
  (* hammer one cache from every worker; values must stay consistent *)
  Pool.with_pool ~jobs:8 @@ fun pool ->
  let cache = Memo.create () in
  let f = Memo.memoize cache (fun (m, k, fl) -> F.a_mray ~m ~k ~f:fl) in
  let keys = List.concat (List.init 20 (fun _ -> t3_grid)) in
  let got = Par.parallel_map pool ~f keys in
  let expected = List.map (fun (m, k, fl) -> F.a_mray ~m ~k ~f:fl) keys in
  check_bool "all values correct under contention" true (got = expected);
  check_int "entries bounded by key set" (List.length t3_grid)
    (Memo.stats cache).Memo.entries

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_record_and_total () =
  let m = Metrics.create ~jobs:3 () in
  Metrics.record m ~experiment:"T1" ~seconds:0.5;
  Metrics.record m ~experiment:"T3" ~seconds:0.25;
  let x = Metrics.time m ~experiment:"quick" (fun () -> 11) in
  check_int "time passes result through" 11 x;
  check_int "three entries" 3 (List.length (Metrics.entries m));
  check_bool "order kept" true
    (List.map fst (Metrics.entries m) = [ "T1"; "T3"; "quick" ]);
  check_bool "total >= recorded" true (Metrics.total m >= 0.75)

let test_metrics_write_merges () =
  let path = Filename.temp_file "metrics" ".json" in
  let m1 = Metrics.create ~jobs:1 () in
  Metrics.record m1 ~experiment:"T1" ~seconds:1.0;
  Metrics.write m1 ~path;
  let m4 = Metrics.create ~jobs:4 () in
  Metrics.record m4 ~experiment:"T1" ~seconds:0.3;
  Metrics.write m4 ~path;
  (* jobs=1 entries survive the jobs=4 write; same-jobs entries are
     replaced on a re-run *)
  let m1' = Metrics.create ~jobs:1 () in
  Metrics.record m1' ~experiment:"T1" ~seconds:0.9;
  Metrics.write m1' ~path;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Search_numerics.Json.of_string contents with
  | Ok (Search_numerics.Json.List entries) ->
      check_int "two entries (jobs 1 replaced, jobs 4 kept)" 2
        (List.length entries);
      let seconds_of jobs =
        List.find_map
          (function
            | Search_numerics.Json.Assoc fields
              when (match List.assoc_opt "jobs" fields with
                    | Some (Search_numerics.Json.Number j) ->
                        Float.equal j (float_of_int jobs)
                    | _ -> false)
              -> (
                match List.assoc_opt "seconds" fields with
                | Some (Search_numerics.Json.Number s) -> Some s
                | _ -> None)
            | _ -> None)
          entries
      in
      checkf "jobs=1 replaced by re-run" 0.9 (Option.get (seconds_of 1));
      checkf "jobs=4 kept" 0.3 (Option.get (seconds_of 4))
  | Ok _ -> Alcotest.fail "timings file is not a JSON list"
  | Error e -> Alcotest.fail ("unparsable timings file: " ^ e)

let test_metrics_concurrent_writes () =
  (* two domains hammer the same timings file; the advisory-locked
     read-modify-write must interleave cleanly: the file stays parsable
     and both job tags keep their final entries *)
  let path = Filename.temp_file "metrics" ".json" in
  let writer jobs =
    Domain.spawn (fun () ->
        for round = 1 to 12 do
          let m = Metrics.create ~jobs () in
          Metrics.record m ~experiment:"contended"
            ~seconds:(float_of_int round);
          Metrics.write m ~path
        done)
  in
  let d1 = writer 1 and d4 = writer 4 in
  Domain.join d1;
  Domain.join d4;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (try Sys.remove (path ^ ".lock") with Sys_error _ -> ());
  match Search_numerics.Json.of_string contents with
  | Ok (Search_numerics.Json.List entries) ->
      check_int "one surviving entry per jobs value" 2 (List.length entries);
      let jobs_seen =
        List.filter_map
          (fun e ->
            Option.bind (Search_numerics.Json.member "jobs" e)
              Search_numerics.Json.to_int)
          entries
        |> List.sort_uniq Int.compare
      in
      check_bool "both job tags present" true (jobs_seen = [ 1; 4 ])
  | Ok _ -> Alcotest.fail "timings file is not a JSON list"
  | Error e -> Alcotest.fail ("torn/unparsable timings file: " ^ e)

(* ------------------------------------------------------------------ *)
(* Memo.Lru *)

let test_lru_evicts_lru_entry () =
  let cache = Memo.Lru.create ~capacity:2 () in
  let f k = Memo.Lru.find_or_add cache k (fun () -> k * 10) in
  check_int "a" 10 (f 1);
  check_int "b" 20 (f 2);
  (* touch 1 so 2 becomes the least recently used *)
  check_int "a again (hit)" 10 (f 1);
  check_int "c (evicts 2)" 30 (f 3);
  check_int "a still cached" 10 (f 1);
  (* 2 was evicted: recomputing it counts a fresh miss *)
  check_int "b recomputed" 20 (f 2);
  let s = Memo.Lru.stats cache in
  check_int "entries bounded" 2 s.Memo.Lru.entries;
  check_int "capacity" 2 s.Memo.Lru.capacity;
  check_int "evictions" 2 s.Memo.Lru.evictions;
  check_int "hits" 2 s.Memo.Lru.hits;
  check_int "misses" 4 s.Memo.Lru.misses

let test_lru_clear_resets () =
  let cache = Memo.Lru.create ~capacity:4 () in
  let f = Memo.Lru.memoize cache (fun k -> k + 1) in
  check_int "computes" 8 (f 7);
  check_int "hit" 8 (f 7);
  Memo.Lru.clear cache;
  let s = Memo.Lru.stats cache in
  check_int "entries cleared" 0 s.Memo.Lru.entries;
  check_int "hits reset" 0 s.Memo.Lru.hits;
  check_int "misses reset" 0 s.Memo.Lru.misses;
  check_int "evictions reset" 0 s.Memo.Lru.evictions

let test_lru_rejects_bad_capacity () =
  match Memo.Lru.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception E.Error (E.Invalid_input _) -> ()

let test_lru_concurrent_consistent () =
  (* a capacity far below the key range forces eviction churn under
     domain contention; values must stay correct throughout *)
  Pool.with_pool ~jobs:8 @@ fun pool ->
  let cache = Memo.Lru.create ~capacity:3 () in
  let f = Memo.Lru.memoize cache (fun k -> k * k) in
  let keys = List.concat (List.init 30 (fun _ -> [ 1; 2; 3; 4; 5; 6 ])) in
  let got = Par.parallel_map pool ~f keys in
  List.iter2 (fun k v -> check_int "value" (k * k) v) keys got;
  let s = Memo.Lru.stats cache in
  check_bool "entries within capacity" true (s.Memo.Lru.entries <= 3);
  check_bool "evictions happened" true (s.Memo.Lru.evictions > 0)

(* ------------------------------------------------------------------ *)
(* Pool.stats *)

let test_pool_stats_counts () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let s0 = Pool.stats pool in
  check_int "jobs" 2 s0.Pool.jobs;
  check_int "nothing submitted" 0 s0.Pool.submitted;
  let ps = List.init 10 (fun i -> Pool.async pool (fun () -> i)) in
  List.iteri (fun i p -> check_int "result" i (Pool.await p)) ps;
  let s = Pool.stats pool in
  check_int "submitted" 10 s.Pool.submitted;
  check_int "settled" 10 s.Pool.settled;
  check_int "none pending after await" 0 s.Pool.pending

(* ------------------------------------------------------------------ *)
(* Metrics history *)

let test_metrics_history_appends () =
  let path = Filename.temp_file "history" ".jsonl" in
  Sys.remove path;
  let append run seconds =
    let m = Metrics.create ~jobs:2 () in
    Metrics.record m ~experiment:"serve/wall" ~seconds;
    Metrics.append_history m ~path ~run
  in
  append "serve-load" 1.5;
  append "serve-load" 1.25;
  let lines = Metrics.read_history path in
  check_int "two runs accumulated" 2 (List.length lines);
  List.iter
    (fun line ->
      check_bool "tagged with the run name" true
        (match Search_numerics.Json.member "run" line with
        | Some (Search_numerics.Json.String s) -> String.equal s "serve-load"
        | _ -> false);
      check_bool "has entries" true
        (Option.is_some (Search_numerics.Json.member "entries" line)))
    lines;
  Sys.remove path;
  (try Sys.remove (path ^ ".lock") with Sys_error _ -> ())

let test_metrics_history_skips_torn_tail () =
  let path = Filename.temp_file "history" ".jsonl" in
  let m = Metrics.create ~jobs:1 () in
  Metrics.record m ~experiment:"T" ~seconds:0.1;
  Metrics.append_history m ~path ~run:"r";
  (* simulate a run killed mid-append: a torn, unparsable last line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"run\": \"torn";
  close_out oc;
  check_int "torn tail skipped" 1 (List.length (Metrics.read_history path));
  check_int "missing file is empty history" 0
    (List.length (Metrics.read_history (path ^ ".does-not-exist")));
  Sys.remove path;
  (try Sys.remove (path ^ ".lock") with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)

let tc name speed fn = Alcotest.test_case name speed fn

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          tc "await returns the value" `Quick test_pool_await_value;
          tc "results keep submission order" `Quick test_pool_ordering;
          tc "exceptions propagate to await" `Quick
            test_pool_exception_propagation;
          tc "nested submissions don't deadlock" `Quick
            test_pool_nested_submit;
          tc "shutdown is idempotent and rejects new work" `Quick
            test_pool_shutdown_rejects;
          tc "shutdown fails promises still pending" `Quick
            test_pool_shutdown_fails_pending;
          tc "a raising task does not wedge its siblings" `Quick
            test_pool_exception_does_not_wedge_siblings;
        ] );
      ( "par",
        [
          tc "parallel_map = List.map on the T1 grid" `Quick
            test_parallel_map_t1;
          tc "parallel_map = List.map on the T3 grid" `Quick
            test_parallel_map_t3;
          tc "mapi and iter" `Quick test_parallel_mapi_and_iter;
          tc "reduce folds floats in input order" `Quick
            test_parallel_reduce_float_order;
          tc "array variant" `Quick test_parallel_map_array;
        ] );
      ( "shard",
        [
          tc "split-tree leaves are reproducible" `Quick
            test_shard_prngs_independent_of_jobs;
          tc "chunks are balanced and order-preserving" `Quick
            test_shards_balanced;
          tc "grid2 is row-major" `Quick test_grid2_row_major;
          tc "stochastic estimate identical at jobs 1 vs 8" `Quick
            test_sharded_stochastic_jobs_invariant;
        ] );
      ( "memo",
        [
          tc "caches and counts" `Quick test_memo_caches;
          tc "consistent under domain contention" `Quick
            test_memo_concurrent;
        ] );
      ( "memo.lru",
        [
          tc "evicts the least recently used" `Quick
            test_lru_evicts_lru_entry;
          tc "clear resets entries and counters" `Quick
            test_lru_clear_resets;
          tc "rejects capacity < 1" `Quick test_lru_rejects_bad_capacity;
          tc "consistent under eviction churn and contention" `Quick
            test_lru_concurrent_consistent;
        ] );
      ( "pool.stats",
        [ tc "counts submitted and settled jobs" `Quick test_pool_stats_counts ] );
      ( "metrics.history",
        [
          tc "append accumulates runs" `Quick test_metrics_history_appends;
          tc "read skips a torn tail" `Quick
            test_metrics_history_skips_torn_tail;
        ] );
      ( "metrics",
        [
          tc "records entries and totals" `Quick
            test_metrics_record_and_total;
          tc "write merges across job counts" `Quick
            test_metrics_write_merges;
          tc "concurrent writers do not clobber" `Quick
            test_metrics_concurrent_writes;
        ] );
    ]
