(* Tests for the simulation substrate: the star-metric world, itineraries,
   compiled trajectories (unit-speed invariant), fault assignments, the
   detection engine, the adversary, competitive profiles, and the
   Byzantine announcement simulator. *)

module W = Search_sim.World
module It = Search_sim.Itinerary
module Tr = Search_sim.Trajectory
module Fault = Search_sim.Fault
module Engine = Search_sim.Engine
module Adv = Search_sim.Adversary
module Comp = Search_sim.Competitive
module Byz = Search_sim.Byzantine_sim

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* World *)

let test_world_arity () =
  check_int "line has 2 rays" 2 (W.arity W.line);
  check_int "5 rays" 5 (W.arity (W.rays 5));
  Alcotest.check_raises "0 rays" (Invalid_argument "World.rays: need m >= 1")
    (fun () -> ignore (W.rays 0))

let test_world_point_validation () =
  let w = W.rays 3 in
  ignore (W.point w ~ray:2 ~dist:1.5);
  (match W.point w ~ray:3 ~dist:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ray out of range accepted");
  match W.point w ~ray:0 ~dist:(-1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative distance accepted"

let test_world_travel_distance () =
  let w = W.rays 3 in
  let p a b = W.point w ~ray:a ~dist:b in
  checkf "same ray" 2. (W.travel_distance (p 0 1.) (p 0 3.));
  checkf "cross rays through origin" 4. (W.travel_distance (p 0 1.) (p 1 3.));
  checkf "from origin" 3. (W.travel_distance W.origin (p 2 3.));
  checkf "origin alias on other ray" 3. (W.travel_distance (p 1 0.) (p 2 3.))

let test_world_origin_equality () =
  let w = W.rays 3 in
  check_bool "origins on different rays equal" true
    (W.equal_point (W.point w ~ray:1 ~dist:0.) (W.point w ~ray:2 ~dist:0.));
  check_bool "distinct points differ" false
    (W.equal_point (W.point w ~ray:1 ~dist:1.) (W.point w ~ray:2 ~dist:1.))

let test_world_line_coordinate () =
  checkf "positive ray" 2.5 (W.line_coordinate (W.point W.line ~ray:0 ~dist:2.5));
  checkf "negative ray" (-2.5)
    (W.line_coordinate (W.point W.line ~ray:1 ~dist:2.5));
  let p = W.of_line_coordinate (-3.) in
  check_int "coordinate -3 -> ray 1" 1 p.W.ray;
  checkf "distance 3" 3. p.W.dist

(* ------------------------------------------------------------------ *)
(* Itinerary *)

let test_itinerary_line_turns () =
  (* doubling zigzag: +1, -2, +4 *)
  let it = It.of_line_turns (fun i -> 2. ** float_of_int (i - 1)) in
  let wp1 = It.waypoint it 1 and wp2 = It.waypoint it 2 in
  check_int "first goes positive" 0 wp1.W.ray;
  checkf "depth 1" 1. wp1.W.dist;
  check_int "second goes negative" 1 wp2.W.ray;
  checkf "depth 2" 2. wp2.W.dist

let test_itinerary_excursions () =
  let w = W.rays 3 in
  let it = It.of_excursions ~world:w (fun i -> (i mod 3, float_of_int i)) in
  (* odd waypoints are the excursion tips, even ones the origin returns *)
  let wp1 = It.waypoint it 1 and wp2 = It.waypoint it 2 in
  check_int "tip ray" 1 wp1.W.ray;
  checkf "tip depth" 1. wp1.W.dist;
  check_bool "returns to origin" true (W.is_origin wp2)

let test_itinerary_validation () =
  let w = W.rays 2 in
  let it = It.make ~world:w (fun _ -> W.point (W.rays 5) ~ray:4 ~dist:1.) in
  match It.waypoint it 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "waypoint outside world accepted"

(* ------------------------------------------------------------------ *)
(* Trajectory *)

let doubling_cow () = It.of_line_turns (fun i -> 2. ** float_of_int (i - 1))

let test_trajectory_legs_split_at_origin () =
  let tr = Tr.compile (doubling_cow ()) in
  (* leg 1: out to +1; leg 2: +1 back to origin; leg 3: origin to -2 *)
  let l1 = Tr.leg tr 1 and l2 = Tr.leg tr 2 and l3 = Tr.leg tr 3 in
  check_int "leg1 ray" 0 l1.Tr.ray;
  checkf "leg1 to depth 1" 1. l1.Tr.d_to;
  checkf "leg2 back to origin" 0. l2.Tr.d_to;
  check_int "leg3 on ray 1" 1 l3.Tr.ray;
  checkf "leg3 out to 2" 2. l3.Tr.d_to

let test_trajectory_unit_speed () =
  let tr = Tr.compile (doubling_cow ()) in
  (* each leg's duration equals its length, legs are contiguous in time *)
  let rec check_leg i t_expected =
    if i <= 12 then begin
      let l = Tr.leg tr i in
      checkf (Printf.sprintf "leg %d starts on time" i) t_expected l.Tr.t_start;
      check_leg (i + 1) (l.Tr.t_start +. Float.abs (l.Tr.d_to -. l.Tr.d_from))
    end
  in
  check_leg 1 0.

let test_trajectory_position () =
  let tr = Tr.compile (doubling_cow ()) in
  let pos t = Tr.position tr t in
  check_bool "starts at origin" true (W.is_origin (pos 0.));
  let p = pos 0.5 in
  check_int "heading out ray 0" 0 p.W.ray;
  checkf "at 0.5" 0.5 p.W.dist;
  let p = pos 1.0 in
  checkf "at the first turn" 1. p.W.dist;
  let p = pos 2.0 in
  check_bool "back at origin at t=2" true (W.is_origin p);
  let p = pos 3.0 in
  check_int "on the negative ray" 1 p.W.ray;
  checkf "one deep" 1. p.W.dist

let test_trajectory_first_visit () =
  let tr = Tr.compile (doubling_cow ()) in
  let target = W.point W.line ~ray:1 ~dist:1.5 in
  (* reached going left: t = 2 (return) + 1.5 = 3.5 *)
  (match Tr.first_visit tr ~target ~horizon:100. with
  | Some t -> checkf "first visit" 3.5 t
  | None -> Alcotest.fail "expected a visit");
  let far = W.point W.line ~ray:0 ~dist:1e6 in
  check_bool "beyond horizon" true
    (Tr.first_visit tr ~target:far ~horizon:10. = None)

let test_trajectory_visits_multiple () =
  let tr = Tr.compile (doubling_cow ()) in
  let target = W.point W.line ~ray:0 ~dist:0.5 in
  (* visited at 0.5 (outbound), 1.5 (inbound), then again around the +4 leg *)
  let visits = Tr.visits tr ~target ~horizon:20. in
  check_bool "at least 4 visits" true (List.length visits >= 4);
  checkf "first" 0.5 (List.nth visits 0);
  checkf "second" 1.5 (List.nth visits 1);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check_bool "increasing" true (increasing visits)

let test_trajectory_visit_at_turn_counted_once () =
  let tr = Tr.compile (doubling_cow ()) in
  let target = W.point W.line ~ray:0 ~dist:1. in
  let visits = Tr.visits tr ~target ~horizon:6. in
  (* turn at +1 at t=1 must appear once, not twice *)
  check_int "tangential turn once" 1
    (List.length (List.filter (fun t -> Float.equal t 1.) visits))

let test_trajectory_origin_visits () =
  let tr = Tr.compile (doubling_cow ()) in
  let visits = Tr.visits tr ~target:W.origin ~horizon:7. in
  (* origin visited at t=2, t=6 going between the sides *)
  check_bool "t=2 present" true (List.mem 2. visits);
  check_bool "t=6 present" true (List.mem 6. visits)

let test_trajectory_straight_line () =
  (* monotone waypoints on one ray: no spurious origin returns *)
  let w = W.rays 2 in
  let it = It.make ~world:w (fun i -> W.point w ~ray:0 ~dist:(float_of_int i)) in
  let tr = Tr.compile it in
  let target = W.point w ~ray:0 ~dist:7.5 in
  (match Tr.first_visit tr ~target ~horizon:100. with
  | Some t -> checkf "straight out" 7.5 t
  | None -> Alcotest.fail "expected visit");
  check_int "single visit" 1 (List.length (Tr.visits tr ~target ~horizon:100.))

let test_trajectory_stalled () =
  let w = W.rays 2 in
  let it = It.make ~world:w (fun _ -> W.point w ~ray:0 ~dist:1.) in
  let tr = Tr.compile it in
  match Tr.visits tr ~target:(W.point w ~ray:1 ~dist:5.) ~horizon:1e6 with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Non_convergence _) ->
      ()
  | _ -> Alcotest.fail "expected Non_convergence on a constant itinerary"

let test_trajectory_leg_endpoints () =
  let tr = Tr.compile (doubling_cow ()) in
  let eps = Tr.leg_endpoints tr ~horizon:6. in
  (* by t=6: reached +1 (t=1), origin (t=2), -2 (t=4), origin (t=6) *)
  check_bool "contains +1 turn" true (List.mem (0, 1.) eps);
  check_bool "contains -2 turn" true (List.mem (1, 2.) eps)

(* ------------------------------------------------------------------ *)
(* Fault *)

let test_fault_none_and_count () =
  let a = Fault.none Fault.Crash ~robots:4 in
  check_int "no faults" 0 (Fault.count_faulty a);
  let b = Fault.make Fault.Crash ~faulty:[| true; false; true |] in
  check_int "two faults" 2 (Fault.count_faulty b)

let test_fault_worst_for_visits () =
  let visits = [| Some 3.; Some 1.; None; Some 2. |] in
  let a = Fault.worst_for_visits Fault.Crash ~first_visits:visits ~f:2 in
  (* earliest visitors are robots 1 (t=1) and 3 (t=2) *)
  check_bool "robot 1 faulty" true a.Fault.faulty.(1);
  check_bool "robot 3 faulty" true a.Fault.faulty.(3);
  check_bool "robot 0 honest" false a.Fault.faulty.(0);
  check_bool "robot 2 honest" false a.Fault.faulty.(2)

let test_fault_pp () =
  let a = Fault.make Fault.Byzantine ~faulty:[| true; false |] in
  Alcotest.(check string) "pp" "byzantine[x.]" (Format.asprintf "%a" Fault.pp a)

(* ------------------------------------------------------------------ *)
(* Engine *)

let two_staggered_cows () =
  (* robot 0 doubles from 1; robot 1 doubles from 1.5: distinct visit times *)
  [|
    Tr.compile
      (It.of_line_turns ~label:"a" (fun i -> 2. ** float_of_int (i - 1)));
    Tr.compile
      (It.of_line_turns ~label:"b" (fun i ->
           1.5 *. (2. ** float_of_int (i - 1))));
  |]

let test_engine_first_visits () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:0.8 in
  let fv = Engine.first_visits trs ~target ~horizon:100. in
  match (fv.(0), fv.(1)) with
  | Some a, Some b ->
      checkf "robot 0 outbound" 0.8 a;
      checkf "robot 1 outbound" 0.8 b
  | _ -> Alcotest.fail "both robots should visit"

let test_engine_worst_is_f_plus_one_visit () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:1 ~dist:1.2 in
  let fv = Engine.first_visits trs ~target ~horizon:100. in
  let t0 = Option.get fv.(0) and t1 = Option.get fv.(1) in
  (match Engine.detection_time_worst trs ~f:0 ~target ~horizon:100. with
  | Some t -> checkf "f=0: earliest visit" (Float.min t0 t1) t
  | None -> Alcotest.fail "expected detection");
  match Engine.detection_time_worst trs ~f:1 ~target ~horizon:100. with
  | Some t -> checkf "f=1: second visit" (Float.max t0 t1) t
  | None -> Alcotest.fail "expected detection"

let test_engine_worst_matches_fixed_worst_assignment () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2.7 in
  let fv = Engine.first_visits trs ~target ~horizon:200. in
  let assignment = Fault.worst_for_visits Fault.Crash ~first_visits:fv ~f:1 in
  let fixed =
    Engine.detection_time_fixed trs ~assignment ~target ~horizon:200.
  in
  let worst = Engine.detection_time_worst trs ~f:1 ~target ~horizon:200. in
  check_bool "agree" true (fixed = worst)

let test_engine_not_enough_visitors () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:1.2 in
  (* with f = 2 there are only 2 robots: never certain *)
  check_bool "needs f+1 = 3 robots" true
    (Engine.detection_time_worst trs ~f:2 ~target ~horizon:1000. = None)

let test_engine_ratio_infinity () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2. in
  check_bool "undetectable -> infinite ratio" true
    (Float.equal
       (Engine.detection_ratio trs ~f:2 ~target ~time_horizon:1000.)
       infinity)

(* all size-[f] subsets of robots [0 .. k-1], as fault assignments *)
let all_f_assignments ~k ~f =
  let rec subsets n = function
    | [] -> if n = 0 then [ [] ] else []
    | x :: rest ->
        if n = 0 then [ [] ]
        else
          List.map (fun s -> x :: s) (subsets (n - 1) rest) @ subsets n rest
  in
  List.map
    (fun faulty_set ->
      let faulty = Array.make k false in
      List.iter (fun r -> faulty.(r) <- true) faulty_set;
      Fault.make Fault.Crash ~faulty)
    (subsets f (List.init k Fun.id))

let test_engine_worst_exhaustive_assignments () =
  (* worst-case detection is the max of fixed-assignment detection over
     every C(k, f) fault assignment — checked by full enumeration *)
  let k = 4 and f = 2 in
  let trs =
    Array.init k (fun r ->
        Tr.compile
          (It.of_line_turns (fun i ->
               (1. +. (0.3 *. float_of_int r)) *. (2. ** float_of_int i))))
  in
  let assignments = all_f_assignments ~k ~f in
  check_int "C(4,2) assignments" 6 (List.length assignments);
  let to_inf = Option.value ~default:infinity in
  List.iter
    (fun dist ->
      let target = W.point W.line ~ray:1 ~dist in
      let worst =
        to_inf (Engine.detection_time_worst trs ~f ~target ~horizon:500.)
      in
      let fixed_max =
        List.fold_left
          (fun acc assignment ->
            Float.max acc
              (to_inf
                 (Engine.detection_time_fixed trs ~assignment ~target
                    ~horizon:500.)))
          neg_infinity assignments
      in
      check_bool "worst = max over all fixed assignments (exact)" true
        (worst = fixed_max))
    [ 1.1; 3.3; 17.0; 490. ]

let test_engine_worst_exhaustive_tie () =
  (* identical robots: every first visit ties, so every fixed assignment
     yields the same detection time, and it equals the worst case *)
  let k = 4 and f = 1 in
  let trs =
    Array.init k (fun _ ->
        Tr.compile (It.of_line_turns (fun i -> 2. ** float_of_int i)))
  in
  let target = W.point W.line ~ray:0 ~dist:1.7 in
  let worst = Engine.detection_time_worst trs ~f ~target ~horizon:100. in
  check_bool "tie detected" true (worst <> None);
  List.iter
    (fun assignment ->
      check_bool "every fixed assignment equals worst" true
        (Engine.detection_time_fixed trs ~assignment ~target ~horizon:100.
        = worst))
    (all_f_assignments ~k ~f)

(* ------------------------------------------------------------------ *)
(* Stochastic *)

module St = Search_sim.Stochastic

let test_stochastic_sum_tolerance () =
  let p = W.point W.line ~ray:0 ~dist:2. in
  let q = W.point W.line ~ray:1 ~dist:2. in
  (* off by 9e-10: inside the 1e-9 tolerance, accepted and renormalised *)
  let d = St.make [ (p, 0.5); (q, 0.5 +. 9e-10) ] in
  checkf "renormalised E|d|" 2. (St.expected_distance d);
  (* off by 2e-9: outside the tolerance, rejected *)
  Alcotest.check_raises "sum off by 2e-9"
    (Search_numerics.Search_error.Error
       (Search_numerics.Search_error.Invalid_input
          { where = "Stochastic.make"; what = "weights must sum to 1" }))
    (fun () -> ignore (St.make [ (p, 0.5); (q, 0.5 +. 2e-9) ]))

let test_stochastic_single_point () =
  let p = W.point W.line ~ray:0 ~dist:5. in
  let d = St.make [ (p, 1.) ] in
  checkf "E|d| is the point" 5. (St.expected_distance d);
  checkf "matches point_mass" (St.expected_distance (St.point_mass p))
    (St.expected_distance d)

let test_stochastic_rejects_bad_weights () =
  let p = W.point W.line ~ray:0 ~dist:1. in
  let q = W.point W.line ~ray:1 ~dist:2. in
  let expect_invalid what support =
    Alcotest.check_raises what
      (Search_numerics.Search_error.Error
         (Search_numerics.Search_error.Invalid_input
            { where = "Stochastic.make"; what }))
      (fun () -> ignore (St.make support))
  in
  expect_invalid "empty support" [];
  (* NaN weights used to slip past [w <= 0.] (false for NaN) and then
     poison the sum check; now rejected up front *)
  expect_invalid "weight not finite" [ (p, 0.5); (q, Float.nan) ];
  expect_invalid "weight not finite" [ (p, 0.5); (q, infinity) ];
  expect_invalid "weight <= 0" [ (p, 1.); (q, 0.) ];
  expect_invalid "weight <= 0" [ (p, 1.5); (q, -0.5) ]

(* ------------------------------------------------------------------ *)
(* Adversary / Competitive *)

let test_adversary_cow_path_is_nine () =
  let tr = [| Tr.compile (doubling_cow ()) |] in
  let out = Adv.worst_case tr ~f:0 ~n:1000. () in
  check_bool "close to 9 from below" true
    (out.Adv.ratio > 8.99 && out.Adv.ratio <= 9.0 +. 1e-6)

let test_adversary_candidates_cover_rays () =
  let tr = [| Tr.compile (doubling_cow ()) |] in
  let cands = Adv.candidate_targets tr ~n:100. ~time_horizon:1000. () in
  check_bool "has ray-0 candidates" true
    (List.exists (fun p -> p.W.ray = 0) cands);
  check_bool "has ray-1 candidates" true
    (List.exists (fun p -> p.W.ray = 1) cands);
  List.iter
    (fun p -> check_bool "in range" true (p.W.dist >= 1. && p.W.dist <= 100.))
    cands

(* Duplicate candidates: two identical trajectories hit the same leg
   endpoints, so before dedup every breakpoint was scanned twice (and
   the [1.]/[n] anchors collided with endpoints).  The deduped scan of
   the pair must do exactly the work of the single robot, with the
   verdict untouched. *)
let test_adversary_dedup_candidates () =
  let one = [| Tr.compile (doubling_cow ()) |] in
  let two = [| Tr.compile (doubling_cow ()); Tr.compile (doubling_cow ()) |] in
  let out1 = Adv.worst_case one ~f:0 ~n:200. () in
  let out2 = Adv.worst_case two ~f:0 ~n:200. () in
  check_int "identical robots add no candidates" out1.Adv.candidates_scanned
    out2.Adv.candidates_scanned;
  check_bool "ratio unchanged" true (Float.equal out1.Adv.ratio out2.Adv.ratio);
  check_bool "witness unchanged" true
    (W.equal_point out1.Adv.witness out2.Adv.witness);
  (* and the candidate list itself is duplicate-free and sorted *)
  let cands = Adv.candidate_targets two ~n:200. ~time_horizon:1000. () in
  let rec strictly_ordered = function
    | a :: (b :: _ as rest) ->
        (a.W.ray < b.W.ray || (a.W.ray = b.W.ray && a.W.dist < b.W.dist))
        && strictly_ordered rest
    | [ _ ] | [] -> true
  in
  check_bool "sorted, no duplicates" true (strictly_ordered cands)

(* The flat (struct-of-arrays) leg view must agree bit for bit with the
   lazy walk on every non-origin target. *)
let test_trajectory_flat_first_visit () =
  let tr = Tr.compile (doubling_cow ()) in
  let horizon = 500. in
  let fl = Tr.flatten tr ~horizon in
  for ray = 0 to 1 do
    List.iter
      (fun dist ->
        let target = W.point W.line ~ray ~dist in
        let reference =
          match Tr.first_visit tr ~target ~horizon with
          | Some t -> t
          | None -> infinity
        in
        let flat = Tr.flat_first_visit fl ~ray ~dist ~horizon in
        check_bool
          (Printf.sprintf "ray %d dist %g" ray dist)
          true
          (Int64.equal (Int64.bits_of_float reference)
             (Int64.bits_of_float flat)))
      [ 1.; 1.5; 2.; 3.7; 16.; 100.; 200.; 450. ]
  done

(* The compiled kernel must reproduce the lazy reference exactly:
   same supremum, same witness, same candidate count. *)
let test_adversary_kernels_agree () =
  let instances =
    [
      ([| Tr.compile (doubling_cow ()) |], 0, 500.);
      ( Array.map Tr.compile
          (Search_strategy.Mray_exponential.itineraries
             (Search_strategy.Mray_exponential.make
                (Search_bounds.Params.line ~k:3 ~f:1))),
        1,
        200. );
    ]
  in
  List.iter
    (fun (trs, f, n) ->
      let l = Adv.worst_case trs ~f ~kernel:`Lazy ~n () in
      let c = Adv.worst_case trs ~f ~kernel:`Compiled ~n () in
      check_bool "ratio bitwise" true
        (Int64.equal
           (Int64.bits_of_float l.Adv.ratio)
           (Int64.bits_of_float c.Adv.ratio));
      check_bool "witness" true (W.equal_point l.Adv.witness c.Adv.witness);
      check_bool "detection time" true
        (Float.equal l.Adv.detection_time c.Adv.detection_time);
      check_int "scanned" l.Adv.candidates_scanned c.Adv.candidates_scanned)
    instances;
  (* f >= k: every candidate escapes under both kernels *)
  let tr = [| Tr.compile (doubling_cow ()) |] in
  let l = Adv.worst_case tr ~f:2 ~kernel:`Lazy ~n:50. () in
  let c = Adv.worst_case tr ~f:2 ~kernel:`Compiled ~n:50. () in
  check_bool "escape lazy" true (Float.equal l.Adv.ratio infinity);
  check_bool "escape compiled" true (Float.equal c.Adv.ratio infinity);
  check_bool "escape witness" true (W.equal_point l.Adv.witness c.Adv.witness)

(* Degenerate inputs for the compiled scan: the singleton candidate
   set (n = 1 collapses each ray to the single depth 1.), k = 1 with
   f = 0, and — through the exposed kernel directly — candidate sets
   the public API cannot produce: no robots, empty depth rows. *)
let test_adversary_kernel_degenerate () =
  let tr = [| Tr.compile (doubling_cow ()) |] in
  let l = Adv.worst_case tr ~f:0 ~kernel:`Lazy ~n:1. () in
  let c = Adv.worst_case tr ~f:0 ~kernel:`Compiled ~n:1. () in
  check_bool "singleton ratio bitwise" true
    (Int64.equal
       (Int64.bits_of_float l.Adv.ratio)
       (Int64.bits_of_float c.Adv.ratio));
  check_bool "singleton witness" true (W.equal_point l.Adv.witness c.Adv.witness);
  check_int "singleton scanned" l.Adv.candidates_scanned
    c.Adv.candidates_scanned;
  (* the raw kernel on an empty candidate set reports the sentinel *)
  let out = [| 0.; 0.; 0. |] in
  Adv.compiled_scan ~flats:[||] ~depths:[| [||]; [||] |] ~times:[||] ~f:0
    ~k:0 ~horizon:10. ~out;
  check_bool "empty candidates sentinel" true
    (Float.equal out.(0) neg_infinity);
  (* empty depth rows on one ray, a singleton on the other *)
  let fl = Tr.flatten tr.(0) ~horizon:100. in
  Adv.compiled_scan ~flats:[| fl |] ~depths:[| [||]; [| 1. |] |]
    ~times:[| infinity |] ~f:0 ~k:1 ~horizon:100. ~out;
  check_bool "singleton row scanned" true (out.(0) > 0.);
  check_bool "singleton row ray" true (Float.equal out.(1) 1.);
  check_bool "singleton row dist" true (Float.equal out.(2) 1.)

let test_adversary_partition_ratio_one () =
  (* k=2 straight-out robots, f=0 on the line: ratio exactly 1 *)
  let w = W.line in
  let straight ray =
    Tr.compile
      (It.make ~world:w (fun i -> W.point w ~ray ~dist:(2. ** float_of_int i)))
  in
  let out = Adv.worst_case [| straight 0; straight 1 |] ~f:0 ~n:100. () in
  checkf "ratio one" 1. out.Adv.ratio

let test_competitive_profile () =
  let tr = [| Tr.compile (doubling_cow ()) |] in
  let pts = Comp.profile tr ~f:0 ~n:100. ~samples:8 () in
  check_int "8 samples x 2 rays" 16 (List.length pts);
  List.iter
    (fun p ->
      check_bool "ratio sane" true
        (p.Comp.ratio >= 1. && p.Comp.ratio <= 9.0 +. 1e-6))
    pts

let test_competitive_horizon_convergence () =
  let make () = [| Tr.compile (doubling_cow ()) |] in
  let series =
    Comp.horizon_convergence ~make_trajectories:make ~f:0
      ~ns:[ 10.; 100.; 1000. ] ()
  in
  check_int "three points" 3 (List.length series);
  List.iter (fun (_, r) -> check_bool "below 9" true (r <= 9.0 +. 1e-6)) series

(* ------------------------------------------------------------------ *)
(* Byzantine_sim *)

let test_byzantine_safety_no_false_confirmation () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2.7 in
  let assignment = Fault.make Fault.Byzantine ~faulty:[| true; false |] in
  (* the faulty robot lies at a place it genuinely occupies: robot 0 is at
     +0.5 at t = 0.5 *)
  let lie =
    { Byz.robot = 0; place = W.point W.line ~ray:0 ~dist:0.5; at_time = 0.5 }
  in
  let result = Byz.run trs ~assignment ~lies:[ lie ] ~target ~horizon:100. in
  check_bool "no false confirmation" true (result.Byz.false_confirmation = None);
  (* with k = 2, f = 1 the rule needs 2 announcers; the faulty robot never
     announces the target, so the target is never confirmed *)
  check_bool "silent fault blocks 2-of-2" true (result.Byz.confirmed_at = None)

let test_byzantine_liveness_three_robots () =
  let trs =
    [|
      Tr.compile
        (It.of_line_turns ~label:"a" (fun i -> 2. ** float_of_int (i - 1)));
      Tr.compile
        (It.of_line_turns ~label:"b" (fun i ->
             1.5 *. (2. ** float_of_int (i - 1))));
      Tr.compile
        (It.of_line_turns ~label:"c" (fun i ->
             1.25 *. (2. ** float_of_int (i - 1))));
    |]
  in
  let target = W.point W.line ~ray:0 ~dist:1.1 in
  let assignment = Fault.make Fault.Byzantine ~faulty:[| true; false; false |] in
  let result = Byz.run trs ~assignment ~lies:[] ~target ~horizon:200. in
  (match result.Byz.confirmed_at with
  | Some t ->
      let worst = Byz.worst_case_detection trs ~f:1 ~target ~horizon:200. in
      check_bool "confirmation no later than the rule's worst case" true
        (match worst with Some w -> t <= w +. 1e-9 | None -> false)
  | None -> Alcotest.fail "expected confirmation");
  check_bool "no false confirmation" true (result.Byz.false_confirmation = None)

let test_byzantine_invalid_lie_rejected () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2. in
  let assignment = Fault.make Fault.Byzantine ~faulty:[| true; false |] in
  let impossible_lie =
    { Byz.robot = 0; place = W.point W.line ~ray:0 ~dist:50.; at_time = 0.1 }
  in
  (match
     Byz.run trs ~assignment ~lies:[ impossible_lie ] ~target ~horizon:10.
   with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Invalid_input _) ->
      ()
  | _ -> Alcotest.fail "teleporting lie accepted");
  let honest_lie =
    { Byz.robot = 1; place = W.point W.line ~ray:0 ~dist:0.5; at_time = 0.5 }
  in
  match Byz.run trs ~assignment ~lies:[ honest_lie ] ~target ~horizon:10. with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Invalid_input _) ->
      ()
  | _ -> Alcotest.fail "honest robot lying accepted"

let test_byzantine_worst_is_2f_plus_1st_visit () =
  (* the conservative rule needs f+1 honest announcers, so its worst case
     is the (2f+1)-st distinct visit — strictly later than the crash
     model's (f+1)-st, witnessing B >= A *)
  let trs =
    Array.init 3 (fun r ->
        Tr.compile
          (It.of_line_turns (fun i ->
               (1. +. (0.25 *. float_of_int r)) *. (2. ** float_of_int (i - 1)))))
  in
  let target = W.point W.line ~ray:1 ~dist:3.3 in
  let byz = Byz.worst_case_detection trs ~f:1 ~target ~horizon:500. in
  check_bool "equals engine with 2f faults" true
    (byz = Engine.detection_time_worst trs ~f:2 ~target ~horizon:500.);
  let crash = Engine.detection_time_worst trs ~f:1 ~target ~horizon:500. in
  check_bool "no earlier than crash" true
    (match (byz, crash) with
    | Some b, Some c -> b >= c
    | _ -> false);
  (* with only 2 robots and f = 1, 2f+1 = 3 visitors can never exist *)
  let two = two_staggered_cows () in
  check_bool "impossible with 2 robots" true
    (Byz.worst_case_detection two ~f:1 ~target ~horizon:500. = None)


(* ------------------------------------------------------------------ *)
(* Exact_adversary *)

module EA = Search_sim.Exact_adversary

let plain_doubling_zigzag () =
  (* turns 1, 2, 4, ... (scale 0.5, alpha 2), positive first *)
  Tr.compile
    (It.of_line_turns (fun i -> 0.5 *. (2. ** float_of_int i)))

let test_exact_first_visit_pieces () =
  let tr = plain_doubling_zigzag () in
  (* on ray 0 the depths (0, 1] are covered by leg 1 starting at t = 0:
     first piece is T(x) = x *)
  match EA.first_visit_pieces tr ~ray:0 ~x_max:10. ~time_horizon:1e4 with
  | p1 :: p2 :: _ ->
      checkf "first piece starts at 0" 0. p1.EA.x_lo;
      checkf "ends at the first turn" 1. p1.EA.x_hi;
      checkf "T(x) = x" 0. p1.EA.a;
      checkf "slope 1" 1. p1.EA.b;
      (* second outbound stretch on ray 0 is the +4 leg: depths (1, 4],
         reached at t = 1 + 1 + 2 + 2 + x = 6 + x *)
      checkf "second piece from 1" 1. p2.EA.x_lo;
      checkf "to 4" 4. p2.EA.x_hi;
      checkf "offset 6" 6. p2.EA.a
  | _ -> Alcotest.fail "expected at least two pieces"

let test_exact_matches_closed_form () =
  (* doubling zigzag: exact sup over [1, n] equals 9 - 2/t for the
     largest turning point t <= n *)
  let zig = [| plain_doubling_zigzag () |] in
  List.iter
    (fun (n, t_max) ->
      let out = EA.worst_case zig ~f:0 ~n () in
      checkf
        (Printf.sprintf "n=%g" n)
        (9. -. (2. /. t_max))
        out.EA.sup;
      checkf "witness at the turning point" t_max out.EA.witness_dist;
      check_bool "one-sided limit" true (not out.EA.attained))
    [ (10., 8.); (100., 64.); (1000., 512.) ]

let test_exact_agrees_with_scan () =
  let p = Search_bounds.Params.line ~k:3 ~f:1 in
  let trs =
    Search_strategy.Group.trajectories (Search_strategy.Group.optimal p)
  in
  let exact = (EA.worst_case trs ~f:1 ~n:500. ()).EA.sup in
  let scan = (Adv.worst_case trs ~f:1 ~n:500. ()).Adv.ratio in
  check_bool "scan within 1e-5 of exact" true (Float.abs (exact -. scan) < 1e-5);
  check_bool "scan never exceeds exact" true (scan <= exact +. 1e-12)

let test_exact_undetectable_infinite () =
  let zig = [| plain_doubling_zigzag (); plain_doubling_zigzag () |] in
  check_bool "f = 2 with 2 robots" true
    (Float.equal (EA.worst_case zig ~f:2 ~n:50. ()).EA.sup infinity)

let test_exact_order_statistic () =
  (* two explicit functions: f0 = x on (0, 10], f1 = 5 + x on (0, 10];
     rank 1 (the later of the two) is 5 + x everywhere *)
  let fns =
    [|
      [ { EA.x_lo = 0.; x_hi = 10.; a = 0.; b = 1. } ];
      [ { EA.x_lo = 0.; x_hi = 10.; a = 5.; b = 1. } ];
    |]
  in
  match EA.order_statistic fns ~rank:1 ~x_max:10. with
  | [ p ] ->
      checkf "offset" 5. p.EA.a;
      checkf "slope" 1. p.EA.b
  | l -> Alcotest.failf "expected one piece, got %d" (List.length l)

let test_exact_order_statistic_crossing () =
  (* f0 = 10 - x (slope -1), f1 = x: they cross at x = 5; the max of the
     two (rank 1) is 10 - x before, x after *)
  let fns =
    [|
      [ { EA.x_lo = 0.; x_hi = 10.; a = 10.; b = -1. } ];
      [ { EA.x_lo = 0.; x_hi = 10.; a = 0.; b = 1. } ];
    |]
  in
  let pieces = EA.order_statistic fns ~rank:1 ~x_max:10. in
  check_bool "crossing creates a boundary at 5" true
    (List.exists (fun p -> Float.abs (p.EA.x_hi -. 5.) < 1e-12) pieces);
  let at x =
    List.find (fun p -> x > p.EA.x_lo && x <= p.EA.x_hi) pieces
  in
  checkf "left of the crossing" 7. ((at 3.).EA.a +. ((at 3.).EA.b *. 3.));
  checkf "right of the crossing" 7. ((at 7.).EA.a +. ((at 7.).EA.b *. 7.))


(* ------------------------------------------------------------------ *)
(* Event_log *)

module EL = Search_sim.Event_log

let test_event_log_structure () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2.2 in
  let fv = Engine.first_visits trs ~target ~horizon:200. in
  let assignment = Fault.worst_for_visits Fault.Crash ~first_visits:fv ~f:1 in
  let entries = EL.narrate_crash trs ~assignment ~target ~horizon:200. in
  check_bool "nonempty" true (List.length entries > 2);
  (* chronological *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.EL.time <= b.EL.time && sorted rest
    | _ -> true
  in
  check_bool "chronological" true (sorted entries);
  (* the faulty visitor is narrated as silent, the detection is present *)
  let texts = List.map (fun e -> e.EL.text) entries in
  let has sub =
    List.exists
      (fun t ->
        let n = String.length sub in
        let rec search i =
          i + n <= String.length t && (String.sub t i n = sub || search (i + 1))
        in
        search 0)
      texts
  in
  check_bool "silent fault narrated" true (has "stays silent");
  check_bool "confirmation narrated" true (has "confirmed");
  (* confirmation time = engine detection time *)
  let last = List.nth entries (List.length entries - 1) in
  (match Engine.detection_time_worst trs ~f:1 ~target ~horizon:200. with
  | Some t -> checkf "confirmation time" t last.EL.time
  | None -> Alcotest.fail "expected detection")

let test_event_log_min_turn_depth () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2.2 in
  let assignment = Fault.none Fault.Crash ~robots:2 in
  let all = EL.narrate_crash trs ~assignment ~target ~horizon:50. in
  let filtered =
    EL.narrate_crash ~min_turn_depth:2. trs ~assignment ~target ~horizon:50.
  in
  check_bool "filter drops shallow turns" true
    (List.length filtered < List.length all)

let test_event_log_undetected () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:40. in
  let assignment = Fault.none Fault.Crash ~robots:2 in
  let entries = EL.narrate_crash trs ~assignment ~target ~horizon:10. in
  let last = List.nth entries (List.length entries - 1) in
  check_bool "mentions not yet confirmed" true
    (let t = last.EL.text in
     String.length t >= 7
     && (let n = String.length "not yet" in
         let rec search i =
           i + n <= String.length t
           && (String.sub t i n = "not yet" || search (i + 1))
         in
         search 0))

(* ------------------------------------------------------------------ *)
(* stress (Slow) *)

let test_stress_deep_trajectory () =
  (* position queries deep into a geometric zigzag: millions of time
     units, hundreds of legs, constant stack *)
  let tr = Tr.compile (doubling_cow ()) in
  let p = Tr.position tr 1e7 in
  check_bool "finite position" true (Float.is_finite p.W.dist);
  check_bool "within reach" true (p.W.dist <= 1e7)

let test_stress_large_horizon_adversary () =
  let p = Search_bounds.Params.line ~k:3 ~f:1 in
  let trs =
    Search_strategy.Group.trajectories (Search_strategy.Group.optimal p)
  in
  let out = Adv.worst_case trs ~f:1 ~n:1e5 () in
  let bound = Search_bounds.Formulas.a_line ~k:3 ~f:1 in
  check_bool "within bound at N=1e5" true (out.Adv.ratio <= bound +. 1e-6);
  check_bool "close to bound" true (bound -. out.Adv.ratio < 1e-4)


(* ------------------------------------------------------------------ *)
(* Svg_render *)

module Svg = Search_sim.Svg_render

let contains hay needle =
  let n = String.length needle in
  let rec search i =
    i + n <= String.length hay && (String.sub hay i n = needle || search (i + 1))
  in
  search 0

let test_svg_basic_document () =
  let trs = two_staggered_cows () in
  let svg = Svg.space_time ~time_max:30. trs in
  check_bool "is svg" true (contains svg "<svg");
  check_bool "closes" true (contains svg "</svg>");
  check_bool "two polylines" true
    (List.length (String.split_on_char 'p' svg) > 2
    && contains svg "polyline");
  check_bool "labels present" true (contains svg ">a<" || contains svg ">a ")

let test_svg_target_and_detection () =
  let trs = two_staggered_cows () in
  let target = W.point W.line ~ray:0 ~dist:2.2 in
  let fv = Engine.first_visits trs ~target ~horizon:100. in
  let fault = Fault.worst_for_visits Fault.Crash ~first_visits:fv ~f:1 in
  let svg = Svg.space_time ~target ~fault ~time_max:40. trs in
  check_bool "visit markers" true (contains svg "<circle");
  check_bool "faulty flagged" true (contains svg "(faulty)");
  check_bool "target labelled" true (contains svg "target")

let test_svg_validation () =
  (match Svg.space_time [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty array accepted");
  let w3 = W.rays 3 in
  let tr =
    Tr.compile
      (It.make ~world:w3 (fun i -> W.point w3 ~ray:0 ~dist:(float_of_int i)))
  in
  match Svg.space_time [| tr |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "3-ray world accepted"

let test_svg_write_roundtrip () =
  let trs = two_staggered_cows () in
  let svg = Svg.space_time ~time_max:10. trs in
  let path = Filename.temp_file "fsearch" ".svg" in
  Svg.write ~path svg;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" svg content

(* ------------------------------------------------------------------ *)
(* properties *)

let gen_turns =
  (* increasing positive turning points, geometric with random base/scale *)
  QCheck2.Gen.(
    let* base = float_range 1.2 3. in
    let* scale = float_range 0.1 2. in
    return (fun i -> scale *. (base ** float_of_int i)))

let prop_unit_speed =
  QCheck2.Test.make ~count:100 ~name:"legs are contiguous and unit speed"
    gen_turns (fun turns ->
      let tr = Tr.compile (It.of_line_turns turns) in
      let ok = ref true in
      let t = ref 0. in
      for i = 1 to 20 do
        let l = Tr.leg tr i in
        if Float.abs (l.Tr.t_start -. !t) > 1e-6 *. Float.max 1. !t then
          ok := false;
        t := l.Tr.t_start +. Float.abs (l.Tr.d_to -. l.Tr.d_from)
      done;
      !ok)

let prop_position_continuous =
  QCheck2.Test.make ~count:50 ~name:"position is 1-Lipschitz in time" gen_turns
    (fun turns ->
      let tr = Tr.compile (It.of_line_turns turns) in
      let ok = ref true in
      for i = 0 to 80 do
        let t1 = 0.25 *. float_of_int i in
        let t2 = t1 +. 0.125 in
        let p1 = Tr.position tr t1 and p2 = Tr.position tr t2 in
        if W.travel_distance p1 p2 > 0.125 +. 1e-9 then ok := false
      done;
      !ok)

let prop_first_visit_is_min_of_visits =
  QCheck2.Test.make ~count:100 ~name:"first_visit = head of visits" gen_turns
    (fun turns ->
      let tr = Tr.compile (It.of_line_turns turns) in
      let target = W.point W.line ~ray:0 ~dist:1.3 in
      match
        ( Tr.first_visit tr ~target ~horizon:300.,
          Tr.visits tr ~target ~horizon:300. )
      with
      | None, [] -> true
      | Some t, x :: _ -> t = x
      | _ -> false)

let prop_detection_monotone_in_f =
  QCheck2.Test.make ~count:60 ~name:"detection time monotone in f" gen_turns
    (fun turns ->
      let trs =
        Array.init 3 (fun r ->
            Tr.compile
              (It.of_line_turns (fun i ->
                   (1. +. (0.3 *. float_of_int r)) *. turns i)))
      in
      let target = W.point W.line ~ray:0 ~dist:2.1 in
      let t f = Engine.detection_time_worst trs ~f ~target ~horizon:1e4 in
      match (t 0, t 1, t 2) with
      | Some a, Some b, Some c -> a <= b && b <= c
      | Some _, Some _, None | Some _, None, None -> true
      | _ -> false)


let prop_exact_vs_scan_random_groups =
  (* the exact piecewise-affine supremum dominates the bracketing scan
     and agrees with it to scan precision, on random staggered groups *)
  QCheck2.Test.make ~count:15 ~name:"exact adversary vs scan"
    QCheck2.Gen.(
      let* alpha = float_range 1.4 2.6 in
      let* k = int_range 1 3 in
      let* f = int_range 0 (k - 1) in
      return (alpha, k, f))
    (fun (alpha, k, f) ->
      let trs =
        Array.init k (fun r ->
            Tr.compile
              (It.of_line_turns (fun i ->
                   (1. +. (0.37 *. float_of_int r))
                   *. (alpha ** float_of_int i))))
      in
      let exact = (EA.worst_case trs ~f ~n:80. ()).EA.sup in
      let scan = (Adv.worst_case trs ~f ~n:80. ()).Adv.ratio in
      match (Float.is_finite exact, Float.is_finite scan) with
      | true, true -> scan <= exact +. 1e-9 && exact -. scan < 1e-4
      | a, b -> a = b)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_unit_speed;
      prop_exact_vs_scan_random_groups;
      prop_position_continuous;
      prop_first_visit_is_min_of_visits;
      prop_detection_monotone_in_f;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sim"
    [
      ( "world",
        [
          tc "arity" `Quick test_world_arity;
          tc "point validation" `Quick test_world_point_validation;
          tc "travel distance" `Quick test_world_travel_distance;
          tc "origin equality" `Quick test_world_origin_equality;
          tc "line coordinate" `Quick test_world_line_coordinate;
        ] );
      ( "itinerary",
        [
          tc "line turns" `Quick test_itinerary_line_turns;
          tc "excursions" `Quick test_itinerary_excursions;
          tc "validation" `Quick test_itinerary_validation;
        ] );
      ( "trajectory",
        [
          tc "legs split at origin" `Quick test_trajectory_legs_split_at_origin;
          tc "unit speed" `Quick test_trajectory_unit_speed;
          tc "position" `Quick test_trajectory_position;
          tc "first visit" `Quick test_trajectory_first_visit;
          tc "multiple visits" `Quick test_trajectory_visits_multiple;
          tc "tangential turn once" `Quick
            test_trajectory_visit_at_turn_counted_once;
          tc "origin visits" `Quick test_trajectory_origin_visits;
          tc "straight line" `Quick test_trajectory_straight_line;
          tc "stalled detection" `Quick test_trajectory_stalled;
          tc "leg endpoints" `Quick test_trajectory_leg_endpoints;
        ] );
      ( "fault",
        [
          tc "none and count" `Quick test_fault_none_and_count;
          tc "worst for visits" `Quick test_fault_worst_for_visits;
          tc "pp" `Quick test_fault_pp;
        ] );
      ( "engine",
        [
          tc "first visits" `Quick test_engine_first_visits;
          tc "(f+1)-st visit" `Quick test_engine_worst_is_f_plus_one_visit;
          tc "worst matches fixed" `Quick
            test_engine_worst_matches_fixed_worst_assignment;
          tc "not enough visitors" `Quick test_engine_not_enough_visitors;
          tc "infinite ratio" `Quick test_engine_ratio_infinity;
          tc "exhaustive assignments" `Quick
            test_engine_worst_exhaustive_assignments;
          tc "exhaustive tie" `Quick test_engine_worst_exhaustive_tie;
        ] );
      ( "stochastic",
        [
          tc "sum tolerance" `Quick test_stochastic_sum_tolerance;
          tc "single point" `Quick test_stochastic_single_point;
          tc "bad weights rejected" `Quick test_stochastic_rejects_bad_weights;
        ] );
      ( "adversary",
        [
          tc "cow path is 9" `Quick test_adversary_cow_path_is_nine;
          tc "candidates cover rays" `Quick test_adversary_candidates_cover_rays;
          tc "dedup candidates" `Quick test_adversary_dedup_candidates;
          tc "flat first visit" `Quick test_trajectory_flat_first_visit;
          tc "kernels agree" `Quick test_adversary_kernels_agree;
          tc "kernel degenerate inputs" `Quick test_adversary_kernel_degenerate;
          tc "partition ratio one" `Quick test_adversary_partition_ratio_one;
        ] );
      ( "competitive",
        [
          tc "profile" `Quick test_competitive_profile;
          tc "horizon convergence" `Quick test_competitive_horizon_convergence;
        ] );
      ( "byzantine",
        [
          tc "safety" `Quick test_byzantine_safety_no_false_confirmation;
          tc "liveness" `Quick test_byzantine_liveness_three_robots;
          tc "invalid lies rejected" `Quick test_byzantine_invalid_lie_rejected;
          tc "worst is (2f+1)-st visit" `Quick
            test_byzantine_worst_is_2f_plus_1st_visit;
        ] );
      ( "exact_adversary",
        [
          tc "first-visit pieces" `Quick test_exact_first_visit_pieces;
          tc "closed form on doubling" `Quick test_exact_matches_closed_form;
          tc "agrees with the scan" `Quick test_exact_agrees_with_scan;
          tc "undetectable infinite" `Quick test_exact_undetectable_infinite;
          tc "order statistic" `Quick test_exact_order_statistic;
          tc "order statistic crossing" `Quick test_exact_order_statistic_crossing;
        ] );
      ( "event_log",
        [
          tc "structure" `Quick test_event_log_structure;
          tc "min turn depth" `Quick test_event_log_min_turn_depth;
          tc "undetected" `Quick test_event_log_undetected;
        ] );
      ( "svg",
        [
          tc "basic document" `Quick test_svg_basic_document;
          tc "target and detection" `Quick test_svg_target_and_detection;
          tc "validation" `Quick test_svg_validation;
          tc "write roundtrip" `Quick test_svg_write_roundtrip;
        ] );
      ( "stress",
        [
          tc "deep trajectory" `Slow test_stress_deep_trajectory;
          tc "large horizon adversary" `Slow test_stress_large_horizon_adversary;
        ] );
      ("properties", properties);
    ]
