(* Tests for the closed-form bounds: parameters and regimes, the formulas
   of Theorems 1 and 6 and eq. (11), Lemmas 4 and 5, the Byzantine
   transfer, and the asymptotic identities. *)

module P = Search_bounds.Params
module E = Search_numerics.Search_error
module F = Search_bounds.Formulas
module L = Search_bounds.Lemma
module B = Search_bounds.Byzantine
module A = Search_bounds.Asymptotics

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_make () =
  let p = P.make ~m:3 ~k:2 ~f:1 in
  check_int "q" 6 (P.q p);
  check_int "s" 4 (P.s p);
  checkf "rho" 3. (P.rho p)

let test_params_line () =
  let p = P.line ~k:3 ~f:1 in
  check_int "m is 2" 2 p.P.m;
  check_int "q = 2(f+1)" 4 (P.q p);
  check_int "s = 2(f+1)-k" 1 (P.s p)

let test_params_validation () =
  let expect_invalid name f =
    match f () with
    | exception
        Search_numerics.Search_error.Error
          (Search_numerics.Search_error.Regime_violation _) ->
        ()
    | _ -> Alcotest.failf "%s should be invalid" name
  in
  expect_invalid "m=1" (fun () -> P.make ~m:1 ~k:1 ~f:0);
  expect_invalid "k=0" (fun () -> P.make ~m:2 ~k:0 ~f:0);
  expect_invalid "f<0" (fun () -> P.make ~m:2 ~k:1 ~f:(-1));
  expect_invalid "f>k" (fun () -> P.make ~m:2 ~k:1 ~f:2)

let test_params_regimes () =
  let regime m k f = P.regime (P.make ~m ~k ~f) in
  check_bool "f=k unsolvable" true (regime 2 2 2 = P.Unsolvable);
  check_bool "k >= m(f+1) ratio one" true (regime 2 4 1 = P.Ratio_one);
  check_bool "exactly k = m(f+1)" true (regime 3 3 0 = P.Ratio_one);
  check_bool "searching" true (regime 2 3 1 = P.Searching);
  check_bool "single robot" true (regime 2 1 0 = P.Searching);
  (* the f = k boundary: (m=2, k=1, f=1) is unsolvable *)
  check_bool "k=f=1" true (regime 2 1 1 = P.Unsolvable)

(* ------------------------------------------------------------------ *)
(* Formulas: anchor values *)

let test_cow_path_is_nine () =
  checkf "A(1,0) on the line" 9. F.cow_path;
  checkf "via a_line" 9. (F.a_line ~k:1 ~f:0)

let test_known_line_values () =
  (* k=2, f=1: s=2, rho=2 -> 9 *)
  checkf "A(2,1) = 9" 9. (F.a_line ~k:2 ~f:1);
  (* k=3, f=1: the paper's headline B(3,1) >= 8/3 * 4^(1/3) + 1 *)
  checkf "A(3,1)"
    ((8. /. 3. *. (4. ** (1. /. 3.))) +. 1.)
    (F.a_line ~k:3 ~f:1);
  (* ratio-one regime *)
  checkf "A(4,1) = 1" 1. (F.a_line ~k:4 ~f:1);
  check_bool "A(k,k) = inf" true (Float.equal (F.a_line ~k:2 ~f:2) infinity)

let test_mray_single_robot () =
  (* 1 + 2 m^m/(m-1)^(m-1) *)
  checkf "m=2" 9. (F.single_robot_mray ~m:2);
  checkf "m=3" (1. +. (2. *. 27. /. 4.)) (F.single_robot_mray ~m:3);
  checkf "m=4" (1. +. (2. *. 256. /. 27.)) (F.single_robot_mray ~m:4)

let test_mray_reduces_to_line () =
  (* substituting m = 2 in (9) gives (1) *)
  List.iter
    (fun (k, f) ->
      checkf
        (Printf.sprintf "m=2 k=%d f=%d" k f)
        (F.a_line ~k ~f) (F.a_mray ~m:2 ~k ~f))
    [ (1, 0); (2, 1); (3, 1); (5, 2); (7, 3); (4, 1) ]

let test_mu_rho_scale_invariance () =
  (* mu(q,k) depends only on rho = q/k *)
  List.iter
    (fun (q, k) ->
      checkf
        (Printf.sprintf "mu(%d,%d) = mu_rho" q k)
        (F.mu_rho (float_of_int q /. float_of_int k))
        (F.mu ~q ~k))
    [ (2, 1); (4, 3); (6, 2); (5, 4); (12, 5) ]

let test_mu_boundary () =
  checkf "mu(q,q) = 1 (0^0 convention)" 1. (F.mu ~q:3 ~k:3);
  checkf "lambda0 at boundary = 3" 3. (F.lambda0 ~q:3 ~k:3);
  checkf "mu_rho 1 = 1" 1. (F.mu_rho 1.)

let test_mu_validation () =
  Alcotest.check_raises "k > q"
    (E.Error
       (E.Invalid_input { where = "Formulas.mu"; what = "need 0 < k <= q" }))
    (fun () -> ignore (F.mu ~q:2 ~k:3))

let test_c_eta () =
  checkf "C(2) = 9" 9. (F.c_eta 2.);
  checkf "C(1) = 3 (continuity)" 3. (F.c_eta 1.);
  (* C(eta) matches lambda0 on rationals: eta = 3/2 *)
  checkf "C(3/2) = lambda0(3,2)" (F.lambda0 ~q:3 ~k:2) (F.c_eta 1.5)

let test_alpha_star () =
  checkf "cow path doubles" 2. (F.alpha_star ~q:2 ~k:1);
  (* alpha* satisfies alpha^k = q/(q-k) *)
  let a = F.alpha_star ~q:6 ~k:4 in
  checkf "defining identity" (6. /. 2.) (a ** 4.);
  Alcotest.check_raises "k = q invalid"
    (E.Error
       (E.Invalid_input
          { where = "Formulas.alpha_star"; what = "need 0 < k < q" }))
    (fun () -> ignore (F.alpha_star ~q:3 ~k:3))

let test_exponential_ratio_at_optimum () =
  (* at alpha*, the exponential strategy achieves exactly lambda0 *)
  List.iter
    (fun (q, k) ->
      let alpha = F.alpha_star ~q ~k in
      checkf
        (Printf.sprintf "q=%d k=%d" q k)
        (F.lambda0 ~q ~k)
        (F.exponential_ratio ~q ~k ~alpha))
    [ (2, 1); (4, 3); (6, 2); (9, 4); (10, 7) ]

let test_exponential_ratio_suboptimal () =
  (* any other base does strictly worse *)
  let q = 4 and k = 3 in
  let opt = F.lambda0 ~q ~k in
  List.iter
    (fun alpha ->
      check_bool
        (Printf.sprintf "alpha=%g worse" alpha)
        true
        (F.exponential_ratio ~q ~k ~alpha > opt +. 1e-9))
    [ 1.1; 1.3; 2.0; 3.0 ]

let test_of_params () =
  checkf "dispatch searching" (F.a_line ~k:3 ~f:1)
    (F.of_params (P.line ~k:3 ~f:1));
  checkf "dispatch ratio-one" 1. (F.of_params (P.line ~k:4 ~f:1))

(* ------------------------------------------------------------------ *)
(* Lemma 4 and 5 *)

let test_lemma4_argmax () =
  (* the stated maximiser beats its neighbourhood *)
  let s = 2 and k = 3 and mu_star = 5. in
  let x0 = L.argmax ~s ~k ~mu_star in
  checkf "closed form" (2. *. 5. /. 5.) x0;
  let v0 = L.poly ~s ~k ~mu_star x0 in
  List.iter
    (fun dx ->
      check_bool
        (Printf.sprintf "beats x0 + %g" dx)
        true
        (v0 >= L.poly ~s ~k ~mu_star (x0 +. dx)))
    [ -0.5; -0.1; -0.01; 0.01; 0.1; 0.5 ]

let test_lemma5_pointwise () =
  (* ratio(x) >= ratio_lower_bound for a grid of x *)
  let s = 3 and k = 2 and mu_star = 4. in
  let lb = L.ratio_lower_bound ~s ~k ~mu_star in
  for i = 1 to 19 do
    let x = mu_star *. float_of_int i /. 20. in
    check_bool
      (Printf.sprintf "x = %g" x)
      true
      (L.ratio ~s ~k ~mu_star ~x >= lb -. 1e-9)
  done

let test_lemma5_equality_at_argmax () =
  let s = 3 and k = 2 and mu_star = 4. in
  let x0 = L.argmax ~s ~k ~mu_star in
  checkf "tight at the maximiser"
    (L.ratio_lower_bound ~s ~k ~mu_star)
    (L.ratio ~s ~k ~mu_star ~x:x0)

let test_delta_threshold () =
  (* delta > 1 iff mu < mu(q,k); delta = 1 at the bound *)
  let k = 3 and s = 1 in
  let mu_bound = F.mu ~q:(k + s) ~k in
  checkf "delta at bound = 1" 1. (L.delta ~s ~k ~mu:mu_bound);
  check_bool "delta below bound > 1" true
    (L.delta ~s ~k ~mu:(mu_bound *. 0.99) > 1.);
  check_bool "delta above bound < 1" true
    (L.delta ~s ~k ~mu:(mu_bound *. 1.01) < 1.)

let test_ratio_validation () =
  Alcotest.check_raises "x out of range"
    (E.Error
       (E.Invalid_input
          { where = "Lemma.ratio"; what = "need 0 < x < mu_star" }))
    (fun () -> ignore (L.ratio ~s:1 ~k:1 ~mu_star:2. ~x:2.))

(* ------------------------------------------------------------------ *)
(* Byzantine *)

let test_byzantine_b31 () =
  checkf "closed form matches transfer" B.b31_exact (B.lower_bound ~k:3 ~f:1);
  check_bool "about 5.23" true (Float.abs (B.b31_exact -. 5.2331) < 1e-3)

let test_byzantine_improvement () =
  match B.isaac16_priors with
  | { B.k = 3; f = 1; isaac16_bound = Some prior } :: _ ->
      checkf "prior is 3.93" 3.93 prior;
      check_bool "improves by > 1.3" true
        (match B.improvement { B.k = 3; f = 1; isaac16_bound = Some prior } with
        | Some d -> d > 1.3
        | None -> false)
  | _ -> Alcotest.fail "expected (3,1) prior first"

let test_byzantine_mray_transfer () =
  checkf "m-ray transfer" (F.a_mray ~m:3 ~k:2 ~f:1)
    (B.lower_bound_mray ~m:3 ~k:2 ~f:1)

(* ------------------------------------------------------------------ *)
(* Asymptotics *)

let test_scale_invariance () =
  check_bool "mu(4,3) = mu(8,6)" true (A.scale_invariant ~q:4 ~k:3 ~c:2);
  check_bool "mu(2,1) = mu(10,5)" true (A.scale_invariant ~q:2 ~k:1 ~c:5)

let test_strictly_decreasing () =
  check_bool "mu(q,k) < mu(q-1,k-1)" true
    (A.strictly_decreasing_in_k ~q:6 ~k:4);
  check_bool "another instance" true (A.strictly_decreasing_in_k ~q:5 ~k:2)

let test_epsilon' () =
  let e = A.epsilon' ~q:6 ~k:4 in
  check_bool "positive gap" true (e > 0.);
  checkf "definition" ((2. *. F.mu ~q:5 ~k:3) -. (2. *. F.mu ~q:6 ~k:4)) e

let test_endpoints () =
  checkf "rho -> 1" A.limit_rho_to_one (A.lambda_of_rho 1.);
  checkf "rho = 2 gives 9" A.lambda_at_two (A.lambda_of_rho 2.)

let test_monotonicity () =
  check_bool "lambda(rho) increasing on [1, 6]" true
    (A.monotone_on ~lo:1. ~hi:6. ~samples:200)


(* ------------------------------------------------------------------ *)
(* Planning *)

module Pl = Search_bounds.Planning

let test_planning_min_robots () =
  (* line, f = 1, budget 6: A(3,1) = 5.233 <= 6 but A(2,1) = 9 > 6 *)
  check_bool "k = 3" true (Pl.min_robots ~m:2 ~f:1 ~lambda:6. = Some 3);
  (* budget 9 is reached already at k = 2 (= 9 exactly) *)
  check_bool "k = 2 at budget 9" true (Pl.min_robots ~m:2 ~f:1 ~lambda:9. = Some 2);
  (* ratio-one fleet always suffices for lambda >= 1 *)
  check_bool "budget 1" true (Pl.min_robots ~m:2 ~f:1 ~lambda:1. = Some 4);
  check_bool "budget below 1" true (Pl.min_robots ~m:2 ~f:1 ~lambda:0.5 = None)

let test_planning_max_faults () =
  (* 5 robots on the line with budget 6: A(5,2) = 4.43 ok, A(5,3) = 6.76 no *)
  check_bool "f = 2" true (Pl.max_faults ~m:2 ~k:5 ~lambda:6. = Some 2);
  (* one robot, budget below 9: not even f = 0 *)
  check_bool "hopeless" true (Pl.max_faults ~m:2 ~k:1 ~lambda:5. = None);
  check_bool "one robot at 9" true (Pl.max_faults ~m:2 ~k:1 ~lambda:9. = Some 0)

let test_planning_achievable () =
  check_bool "searching yes" true (Pl.achievable ~m:2 ~k:3 ~f:1 ~lambda:5.3);
  check_bool "searching no" false (Pl.achievable ~m:2 ~k:3 ~f:1 ~lambda:5.2);
  check_bool "ratio one" true (Pl.achievable ~m:2 ~k:4 ~f:1 ~lambda:1.);
  check_bool "unsolvable" false (Pl.achievable ~m:2 ~k:2 ~f:2 ~lambda:100.);
  check_bool "invalid params" false (Pl.achievable ~m:2 ~k:1 ~f:5 ~lambda:100.)

let test_planning_rho_inverse () =
  checkf "lambda 9 -> rho 2" 2. (Pl.rho_for_lambda ~lambda:9.);
  checkf "lambda 3 -> rho 1" 1. (Pl.rho_for_lambda ~lambda:3.);
  (* roundtrip *)
  let rho = Pl.rho_for_lambda ~lambda:6. in
  checkf "roundtrip" 6. ((2. *. F.mu_rho rho) +. 1.);
  Alcotest.check_raises "below 3"
    (E.Error
       (E.Invalid_input
          { where = "Planning.rho_for_lambda"; what = "need lambda >= 3" }))
    (fun () -> ignore (Pl.rho_for_lambda ~lambda:2.5))

let test_planning_cheapest_fleets () =
  let plans = Pl.cheapest_fleets ~m:2 ~lambda:6. ~max_f:3 in
  check_int "four rows" 4 (List.length plans);
  List.iter
    (fun { Pl.k; f; ratio } ->
      check_bool "achieves" true (ratio <= 6.);
      (* minimality: one fewer robot fails *)
      check_bool "minimal" true
        (k = f + 1 || not (Pl.achievable ~m:2 ~k:(k - 1) ~f ~lambda:6.)))
    plans

let prop_planning_consistent =
  QCheck2.Test.make ~count:200 ~name:"min_robots/achievable consistency"
    (QCheck2.Gen.(
       let* m = int_range 2 5 in
       let* f = int_range 0 3 in
       let* lambda = float_range 1. 20. in
       return (m, f, lambda)))
    (fun (m, f, lambda) ->
      match Pl.min_robots ~m ~f ~lambda with
      | None -> lambda < 1.
      | Some k ->
          Pl.achievable ~m ~k ~f ~lambda
          && (k = f + 1 || not (Pl.achievable ~m ~k:(k - 1) ~f ~lambda)))

(* ------------------------------------------------------------------ *)
(* properties *)

let gen_searching_instance =
  (* random (m, k, f) in the searching regime *)
  let open QCheck2.Gen in
  let* m = int_range 2 6 in
  let* f = int_range 0 3 in
  let q = m * (f + 1) in
  let* k = int_range (f + 1) (q - 1) in
  return (m, k, f)

let prop_bound_at_least_three =
  QCheck2.Test.make ~count:300
    ~name:"searching-regime bound is > 3 (rho > 1 strictly)"
    gen_searching_instance (fun (m, k, f) -> F.a_mray ~m ~k ~f > 3.)

let prop_bound_monotone_in_f =
  QCheck2.Test.make ~count:300 ~name:"more faults never help"
    gen_searching_instance (fun (m, k, f) ->
      let v = F.a_mray ~m ~k ~f in
      let v' = F.a_mray ~m ~k ~f:(min k (f + 1)) in
      v' >= v -. 1e-9)

let prop_bound_monotone_in_k =
  QCheck2.Test.make ~count:300 ~name:"more robots never hurt"
    gen_searching_instance (fun (m, k, f) ->
      F.a_mray ~m ~k:(k + 1) ~f <= F.a_mray ~m ~k ~f +. 1e-9)

let prop_bound_monotone_in_m =
  QCheck2.Test.make ~count:300 ~name:"more rays never help"
    gen_searching_instance (fun (m, k, f) ->
      F.a_mray ~m:(m + 1) ~k ~f >= F.a_mray ~m ~k ~f -. 1e-9)

let prop_lemma5_random =
  let gen =
    QCheck2.Gen.(
      quad (int_range 1 8) (int_range 1 8) (float_range 0.5 10.)
        (float_range 0.01 0.99))
  in
  QCheck2.Test.make ~count:500 ~name:"Lemma 5 pointwise on random inputs" gen
    (fun (s, k, mu_star, t) ->
      let x = t *. mu_star in
      L.ratio ~s ~k ~mu_star ~x >= L.ratio_lower_bound ~s ~k ~mu_star -. 1e-9)

let prop_mu_rho_form_matches =
  QCheck2.Test.make ~count:300 ~name:"(k,s) and rho forms of the bound agree"
    gen_searching_instance (fun (m, k, f) ->
      let q = m * (f + 1) in
      let direct = F.lambda0 ~q ~k in
      let via_rho = (2. *. F.mu_rho (float_of_int q /. float_of_int k)) +. 1. in
      Float.abs (direct -. via_rho) <= 1e-9 *. direct)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_planning_consistent;
      prop_bound_at_least_three;
      prop_bound_monotone_in_f;
      prop_bound_monotone_in_k;
      prop_bound_monotone_in_m;
      prop_lemma5_random;
      prop_mu_rho_form_matches;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "bounds"
    [
      ( "params",
        [
          tc "make and derived" `Quick test_params_make;
          tc "line" `Quick test_params_line;
          tc "validation" `Quick test_params_validation;
          tc "regimes" `Quick test_params_regimes;
        ] );
      ( "formulas",
        [
          tc "cow path is 9" `Quick test_cow_path_is_nine;
          tc "known line values" `Quick test_known_line_values;
          tc "single robot m rays" `Quick test_mray_single_robot;
          tc "m=2 reduces to the line" `Quick test_mray_reduces_to_line;
          tc "mu scale invariance" `Quick test_mu_rho_scale_invariance;
          tc "mu boundary" `Quick test_mu_boundary;
          tc "mu validation" `Quick test_mu_validation;
          tc "C(eta)" `Quick test_c_eta;
          tc "alpha star" `Quick test_alpha_star;
          tc "exponential ratio optimal" `Quick test_exponential_ratio_at_optimum;
          tc "exponential ratio suboptimal" `Quick
            test_exponential_ratio_suboptimal;
          tc "of_params" `Quick test_of_params;
        ] );
      ( "lemma",
        [
          tc "lemma 4 argmax" `Quick test_lemma4_argmax;
          tc "lemma 5 pointwise" `Quick test_lemma5_pointwise;
          tc "lemma 5 equality" `Quick test_lemma5_equality_at_argmax;
          tc "delta threshold" `Quick test_delta_threshold;
          tc "ratio validation" `Quick test_ratio_validation;
        ] );
      ( "byzantine",
        [
          tc "B(3,1)" `Quick test_byzantine_b31;
          tc "improvement over ISAAC'16" `Quick test_byzantine_improvement;
          tc "m-ray transfer" `Quick test_byzantine_mray_transfer;
        ] );
      ( "asymptotics",
        [
          tc "scale invariance" `Quick test_scale_invariance;
          tc "strictly decreasing" `Quick test_strictly_decreasing;
          tc "epsilon'" `Quick test_epsilon';
          tc "endpoints 3 and 9" `Quick test_endpoints;
          tc "monotone in rho" `Quick test_monotonicity;
        ] );
      ( "planning",
        [
          tc "min robots" `Quick test_planning_min_robots;
          tc "max faults" `Quick test_planning_max_faults;
          tc "achievable" `Quick test_planning_achievable;
          tc "rho inverse" `Quick test_planning_rho_inverse;
          tc "cheapest fleets" `Quick test_planning_cheapest_fleets;
        ] );
      ("properties", properties);
    ]
