(* Tests for the supervised execution runtime: the error taxonomy, the
   per-task budgets, cancellation tokens, deterministic retry, chaos
   fault injection, the checkpoint journal, and the stale-lock-breaking
   file lock.  The load-bearing properties are (a) chaos is a pure
   function of (seed, task key), so a supervisor with enough retries
   reproduces the fault-free outputs exactly at every job count, and
   (b) a journal written by a killed run resumes to the same results. *)

module E = Search_resilience.Search_error
module Budget = Search_resilience.Budget
module Cancel = Search_resilience.Cancel
module Retry = Search_resilience.Retry
module Chaos = Search_resilience.Chaos
module Journal = Search_resilience.Journal
module Lockfile = Search_resilience.Lockfile
module Json = Search_numerics.Json
module Pool = Search_exec.Pool
module Supervise = Search_exec.Supervise

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Search_error *)

let sample_errors =
  [
    E.Invalid_input { where = "Formulas.mu"; what = "need 0 < k <= q" };
    E.Regime_violation { m = 3; k = 9; f = 1; what = "outside the regime" };
    E.Non_convergence { where = "Solve.bisect"; steps = 64; detail = "flat" };
    E.Budget_exceeded
      { task = "sweep/alpha-3"; resource = E.Steps; limit = 100.; spent = 101. };
    E.Budget_exceeded
      {
        task = "sweep/alpha-4";
        resource = E.Seconds;
        limit = infinity;
        spent = nan;
      };
    E.Cancelled { task = "t"; reason = "operator" };
    E.Injected_fault { task = "fuzz/case-7"; attempt = 1; kind = "exception" };
    E.Worker_crash { task = "t"; attempt = 0; detail = "Stack_overflow" };
    E.Pool_closed { what = "task abandoned by Pool.shutdown" };
    E.Io_failure { path = "/tmp/x"; what = "ENOSPC" };
  ]

let test_error_json_roundtrip () =
  List.iter
    (fun e ->
      match E.of_json (E.to_json e) with
      | Ok e' ->
          check_string
            ("roundtrip " ^ E.tag e)
            (E.to_string e) (E.to_string e')
      | Error msg -> Alcotest.fail (E.tag e ^ ": of_json failed: " ^ msg))
    sample_errors;
  (* non-finite floats survive Json.to_string (which rejects raw
     non-finite numbers) *)
  List.iter
    (fun e -> ignore (Json.to_string (E.to_json e)))
    sample_errors

let test_error_tags_distinct () =
  let tags = List.map E.tag sample_errors |> List.sort_uniq String.compare in
  (* two Budget_exceeded samples share a tag, the rest are distinct *)
  check_int "nine distinct tags" 9 (List.length tags);
  List.iter
    (fun t ->
      check_bool ("kebab " ^ t) true
        (String.for_all
           (fun c -> (c >= 'a' && c <= 'z') || c = '-')
           t))
    tags

let test_error_classify () =
  let cls e = E.classify ~task:"t" ~attempt:2 e in
  (match cls (E.Error (E.Pool_closed { what = "x" })) with
  | E.Pool_closed _ -> ()
  | e -> Alcotest.fail ("Error kept: " ^ E.to_string e));
  (match cls (Invalid_argument "Formulas.mu: need 0 < k <= q") with
  | E.Invalid_input { where = "Formulas.mu"; what } ->
      check_string "split at colon" "need 0 < k <= q" what
  | e -> Alcotest.fail ("Invalid_argument: " ^ E.to_string e));
  (match cls Stack_overflow with
  | E.Worker_crash { attempt = 2; _ } -> ()
  | e -> Alcotest.fail ("fallthrough: " ^ E.to_string e));
  check_bool "injected retryable" true
    (E.retryable (E.Injected_fault { task = "t"; attempt = 0; kind = "x" }));
  check_bool "crash retryable" true
    (E.retryable (E.Worker_crash { task = "t"; attempt = 0; detail = "x" }));
  check_bool "invalid not retryable" false
    (E.retryable (E.Invalid_input { where = "w"; what = "x" }));
  check_bool "budget not retryable" false
    (E.retryable
       (E.Budget_exceeded
          { task = "t"; resource = E.Steps; limit = 1.; spent = 2. }))

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_step_limit () =
  let b = Budget.make ~steps:10 () in
  let m = Budget.start b ~task:"steppy" in
  for _ = 1 to 10 do
    Budget.step m
  done;
  check_int "ten consumed" 10 (Budget.used m);
  (match Budget.step m with
  | () -> Alcotest.fail "eleventh step must raise"
  | exception E.Error (E.Budget_exceeded { task = "steppy"; resource = E.Steps; _ })
    -> ());
  (* cost-weighted steps hit the limit early *)
  let m2 = Budget.start b ~task:"bulk" in
  match Budget.step ~cost:11 m2 with
  | () -> Alcotest.fail "bulk step must raise"
  | exception E.Error (E.Budget_exceeded _) -> ()

(* the seconds cap reads an injectable clock: a virtual clock makes the
   wall-clock backstop fully testable (and the simulated runtime uses
   exactly this seam) *)
let test_budget_seconds_with_injected_clock () =
  let vnow = ref 100.0 in
  let clock () = !vnow in
  let b = Budget.make ~seconds:5.0 () in
  let m = Budget.start ~clock b ~task:"clocked" in
  vnow := 104.9;
  Budget.step m;
  vnow := 105.1;
  (match Budget.step m with
  | () -> Alcotest.fail "step past the seconds cap must raise"
  | exception
      E.Error
        (E.Budget_exceeded { task = "clocked"; resource = E.Seconds; _ }) ->
      ());
  (* a frozen clock never trips the cap *)
  let m2 = Budget.start ~clock:(fun () -> 0.) b ~task:"frozen" in
  for _ = 1 to 1000 do
    Budget.step m2
  done

let test_budget_unlimited_and_validation () =
  let m = Budget.start Budget.unlimited ~task:"free" in
  for _ = 1 to 10_000 do
    Budget.step m
  done;
  check_bool "unlimited spec" true (Budget.is_unlimited Budget.unlimited);
  check_bool "capped spec" false
    (Budget.is_unlimited (Budget.make ~steps:1 ()));
  match Budget.make ~steps:0 () with
  | _ -> Alcotest.fail "steps = 0 must be rejected"
  | exception E.Error (E.Invalid_input _) -> ()

(* ------------------------------------------------------------------ *)
(* Cancel *)

let test_cancel_latch () =
  let t = Cancel.create () in
  check_bool "fresh" false (Cancel.is_cancelled t);
  Cancel.check t ~task:"ok";
  Cancel.cancel ~reason:"first" t;
  Cancel.cancel ~reason:"second" t;
  check_bool "latched" true (Cancel.is_cancelled t);
  check_string "first reason wins" "first"
    (Option.value (Cancel.reason t) ~default:"?");
  match Cancel.check t ~task:"late" with
  | () -> Alcotest.fail "check on a latched token must raise"
  | exception E.Error (E.Cancelled { task = "late"; reason = "first" }) -> ()

(* ------------------------------------------------------------------ *)
(* Retry *)

let test_retry_recovers_and_reports () =
  let observed = ref [] in
  let calls = ref 0 in
  let result =
    Retry.run
      ~policy:(Retry.immediate ~attempts:3)
      ~on_error:(fun ~attempt e -> observed := (attempt, E.tag e) :: !observed)
      ~task:"flaky"
      (fun ~attempt ->
        incr calls;
        if attempt < 2 then
          E.raise_ (E.Injected_fault { task = "flaky"; attempt; kind = "x" })
        else attempt * 10)
  in
  (match result with
  | Ok v -> check_int "third attempt succeeded" 20 v
  | Error e -> Alcotest.fail (E.to_string e));
  check_int "three calls" 3 !calls;
  check_bool "both failures reported" true
    (List.rev !observed = [ (0, "injected-fault"); (1, "injected-fault") ])

let test_retry_does_not_retry_deterministic_failures () =
  let calls = ref 0 in
  let result =
    Retry.run
      ~policy:(Retry.immediate ~attempts:5)
      ~task:"det"
      (fun ~attempt:_ ->
        incr calls;
        E.invalid ~where:"det" "always wrong")
  in
  (match result with
  | Ok _ -> Alcotest.fail "must fail"
  | Error (E.Invalid_input _) -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  check_int "exactly one call" 1 !calls

let test_retry_exhausts_attempts () =
  let result =
    Retry.run
      ~policy:(Retry.immediate ~attempts:2)
      ~task:"doomed"
      (fun ~attempt ->
        E.raise_ (E.Injected_fault { task = "doomed"; attempt; kind = "x" }))
  in
  match result with
  | Ok _ -> Alcotest.fail "must fail"
  | Error (E.Injected_fault { attempt = 1; _ }) -> ()
  | Error e -> Alcotest.fail ("last failure kept: " ^ E.to_string e)

let test_retry_backoff_deterministic () =
  let p = { Retry.attempts = 5; base_delay = 0.001; factor = 2.; max_delay = 0.003 } in
  let delays = List.init 5 (fun a -> Retry.delay_for p ~attempt:a) in
  check_bool "exponential then capped" true
    (List.for_all2 Float.equal delays [ 0.001; 0.002; 0.003; 0.003; 0.003 ]);
  (* sleeps use exactly those delays, via the injected sleep *)
  let slept = ref [] in
  let _ =
    Retry.run ~policy:p
      ~sleep:(fun d -> slept := d :: !slept)
      ~task:"sleepy"
      (fun ~attempt ->
        E.raise_ (E.Injected_fault { task = "sleepy"; attempt; kind = "x" }))
  in
  check_bool "4 backoffs recorded" true
    (List.rev !slept
    |> List.for_all2 Float.equal [ 0.001; 0.002; 0.003; 0.003 ])

(* ------------------------------------------------------------------ *)
(* Chaos *)

let test_chaos_plan_deterministic () =
  let c = Chaos.make ~seed:42 () in
  let tasks = List.init 200 (Printf.sprintf "task-%d") in
  List.iter
    (fun t ->
      let p1 = Chaos.plan c ~task:t and p2 = Chaos.plan c ~task:t in
      check_bool ("stable plan for " ^ t) true (Chaos.plan_equal p1 p2);
      check_bool "faults within cap" true
        (p1.Chaos.faults >= 0 && p1.Chaos.faults <= Chaos.max_faults c);
      check_int "one kind per fault" p1.Chaos.faults
        (List.length p1.Chaos.kinds))
    tasks;
  (* the seed matters and the task key matters *)
  let other = Chaos.make ~seed:43 () in
  let differs =
    List.exists
      (fun t ->
        not (Chaos.plan_equal (Chaos.plan c ~task:t) (Chaos.plan other ~task:t)))
      tasks
  in
  check_bool "different seed gives different plans" true differs;
  let faulted =
    List.filter (fun t -> (Chaos.plan c ~task:t).Chaos.faults > 0) tasks
  in
  check_bool "some tasks faulted" true (List.length faulted > 0);
  check_bool "not every task faulted" true
    (List.length faulted < List.length tasks)

let test_chaos_run_schedule () =
  let c = Chaos.make ~seed:7 ~fault_rate:1.0 ~max_faults:3 () in
  let task = "always-faulty" in
  let plan = Chaos.plan c ~task in
  check_bool "fault_rate 1 means >= 1 fault" true (plan.Chaos.faults >= 1);
  for a = 0 to plan.Chaos.faults - 1 do
    match Chaos.run c ~task ~attempt:a (fun () -> `Ran) with
    | `Ran -> Alcotest.fail (Printf.sprintf "attempt %d must fault" a)
    | exception E.Error (E.Injected_fault { attempt; _ }) ->
        check_int "attempt recorded" a attempt
  done;
  match Chaos.run c ~task ~attempt:plan.Chaos.faults (fun () -> `Ran) with
  | `Ran -> ()
  | exception e ->
      Alcotest.fail ("post-fault attempt must run: " ^ Printexc.to_string e)

let test_chaos_disabled_is_free () =
  check_bool "disabled" false (Chaos.enabled Chaos.disabled);
  check_int "no faults" 0 (Chaos.max_faults Chaos.disabled);
  check_int "body runs" 5
    (Chaos.run Chaos.disabled ~task:"t" ~attempt:0 (fun () -> 5))

(* ------------------------------------------------------------------ *)
(* Supervise: chaos + retries reproduce the plain run at any job count *)

let test_supervised_map_chaos_identity () =
  let items = List.init 24 Fun.id in
  let f _meter i = Int64.bits_of_float (sqrt (float_of_int (i + 1))) in
  let task i _ = Printf.sprintf "drill/item-%d" i in
  let plain =
    Pool.with_pool ~jobs:1 (fun pool -> Supervise.map pool ~task ~f items)
  in
  let chaos = Chaos.make ~seed:42 () in
  let spec =
    {
      Supervise.default with
      chaos;
      retry = Retry.immediate ~attempts:(Chaos.max_faults chaos + 1);
    }
  in
  List.iter
    (fun jobs ->
      let got =
        Pool.with_pool ~jobs (fun pool -> Supervise.map pool ~spec ~task ~f items)
      in
      let same =
        List.for_all2
          (fun a b ->
            match (a, b) with
            | Ok x, Ok y -> Int64.equal x y
            | _ -> false)
          plain got
      in
      check_bool
        (Printf.sprintf "chaos+retries == plain at jobs=%d" jobs)
        true same)
    [ 1; 4 ]

(* Chunked dispatch must not change anything observable: same results
   in the same order, same per-item chaos plans (task keys unchanged),
   at every chunk size — including chunks larger than the batch. *)
let test_supervised_map_chunk_identity () =
  let items = List.init 23 Fun.id in
  let f _meter i = (i * i) + 1 in
  let task i _ = Printf.sprintf "chunky/item-%d" i in
  let chaos = Chaos.make ~seed:7 () in
  let spec =
    {
      Supervise.default with
      chaos;
      retry = Retry.immediate ~attempts:(Chaos.max_faults chaos + 1);
    }
  in
  let reference =
    Pool.with_pool ~jobs:1 (fun pool -> Supervise.map pool ~spec ~task ~f items)
  in
  List.iter
    (fun (jobs, chunk) ->
      let got =
        Pool.with_pool ~jobs (fun pool ->
            Supervise.map pool ~spec ~chunk ~task ~f items)
      in
      check_bool
        (Printf.sprintf "chunk=%d jobs=%d" chunk jobs)
        true
        (List.for_all2
           (fun a b ->
             match (a, b) with Ok x, Ok y -> x = y | _ -> false)
           reference got))
    [ (1, 2); (1, 16); (4, 3); (4, 64) ];
  Alcotest.check_raises "chunk must be positive"
    (Invalid_argument "Supervise.map: chunk must be >= 1") (fun () ->
      ignore
        (Pool.with_pool ~jobs:1 (fun pool ->
             Supervise.map pool ~chunk:0 ~task ~f items)))

let test_supervised_map_insufficient_retries_fail_closed () =
  (* with no retries, chaos-faulted items surface as Error, the rest
     still succeed — graceful degradation, not abort *)
  let items = List.init 50 Fun.id in
  let task i _ = Printf.sprintf "degrade/item-%d" i in
  let chaos = Chaos.make ~seed:11 () in
  let spec = { Supervise.default with chaos } in
  let results =
    Pool.with_pool ~jobs:2 (fun pool ->
        Supervise.map pool ~spec ~task ~f:(fun _ i -> i) items)
  in
  let errs =
    List.filter (function Error (E.Injected_fault _) -> true | _ -> false)
      results
  in
  let oks = List.filter Result.is_ok results in
  check_int "every item accounted for" 50
    (List.length errs + List.length oks);
  check_bool "some faults surfaced" true (List.length errs > 0);
  check_bool "some items unharmed" true (List.length oks > 0);
  (* and the partition is exactly the chaos plan *)
  List.iteri
    (fun i r ->
      let faulted = (Chaos.plan chaos ~task:(task i i)).Chaos.faults > 0 in
      check_bool
        (Printf.sprintf "item %d matches its plan" i)
        faulted (Result.is_error r))
    results

(* ------------------------------------------------------------------ *)
(* Journal *)

let journal_config = Json.Assoc [ ("run", Json.String "test") ]

let test_journal_roundtrip_and_resume () =
  let dir = temp_dir "journal" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j = Journal.open_ ~dir ~config:journal_config in
  check_int "fresh journal is empty" 0 (Journal.entries j);
  Journal.record j ~key:"a" (Json.Number 1.);
  Journal.record j ~key:"b" (Json.String "two");
  Journal.record j ~key:"a" (Json.Number 3.) (* last write wins *);
  Journal.close j;
  (* same config resumes the same file *)
  let j2 = Journal.open_ ~dir ~config:journal_config in
  check_string "same path" (Journal.path j) (Journal.path j2);
  check_int "two keys" 2 (Journal.entries j2);
  (match Journal.find j2 "a" with
  | Some (Json.Number n) -> check_bool "last write wins" true (Float.equal n 3.)
  | _ -> Alcotest.fail "key a lost");
  (* a different config gets a different file *)
  let other =
    Journal.open_ ~dir ~config:(Json.Assoc [ ("run", Json.String "other") ])
  in
  check_bool "configs do not collide" true
    (not (String.equal (Journal.path j2) (Journal.path other)));
  check_int "other journal empty" 0 (Journal.entries other);
  Journal.finish other;
  (* finish deletes *)
  Journal.finish j2;
  check_bool "finish removed the file" false (Sys.file_exists (Journal.path j2))

let test_journal_tolerates_torn_tail () =
  let dir = temp_dir "torn" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j = Journal.open_ ~dir ~config:journal_config in
  Journal.record j ~key:"done" (Json.Number 42.);
  Journal.close j;
  (* simulate a SIGKILL mid-write: append half a record *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Journal.path j)
  in
  output_string oc "{\"key\":\"torn\",\"val";
  close_out oc;
  let j2 = Journal.open_ ~dir ~config:journal_config in
  check_int "completed prefix survives" 1 (Journal.entries j2);
  check_bool "torn record dropped" true (Journal.find j2 "torn" = None);
  (match Journal.find j2 "done" with
  | Some (Json.Number n) -> check_bool "value intact" true (Float.equal n 42.)
  | _ -> Alcotest.fail "completed record lost");
  Journal.finish j2

let test_supervised_map_resumes_from_journal () =
  let dir = temp_dir "resume" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let items = List.init 10 Fun.id in
  let task i _ = Printf.sprintf "resume/item-%d" i in
  let persist () =
    {
      Supervise.journal = Journal.open_ ~dir ~config:journal_config;
      encode = (fun v -> Json.Number (float_of_int v));
      decode =
        (fun j ->
          match j with
          | Json.Number n -> Ok (int_of_float n)
          | _ -> Error "not a number");
    }
  in
  (* first (interrupted) run computes only half, then "dies": journal is
     closed, not finished *)
  let computed = Atomic.make 0 in
  let p1 = persist () in
  let first =
    Pool.with_pool ~jobs:1 (fun pool ->
        Supervise.map pool ~persist:p1 ~task
          ~f:(fun _ i ->
            Atomic.incr computed;
            if i >= 5 then failwith "killed" else i * i)
          items)
  in
  Journal.close p1.Supervise.journal;
  check_int "first run computed everything once" 10 (Atomic.get computed);
  check_int "five checkpoints"
    5
    (List.length (List.filter Result.is_ok first));
  (* the resumed run recomputes only the missing five *)
  Atomic.set computed 0;
  let p2 = persist () in
  let second =
    Pool.with_pool ~jobs:1 (fun pool ->
        Supervise.map pool ~persist:p2 ~task ~f:(fun _ i -> Atomic.incr computed; i * i) items)
  in
  Journal.finish p2.Supervise.journal;
  check_int "only the missing half recomputed" 5 (Atomic.get computed);
  check_bool "final results identical to an uninterrupted run" true
    (List.for_all2
       (fun i r -> match r with Ok v -> v = i * i | Error _ -> false)
       items second)

(* ------------------------------------------------------------------ *)
(* Lockfile *)

let test_lockfile_mutual_exclusion () =
  let dir = temp_dir "lock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "x.lock" in
  let inside = ref false in
  let overlap = ref false in
  let worker () =
    Domain.spawn (fun () ->
        for _ = 1 to 25 do
          Lockfile.with_lock ~path (fun () ->
              if !inside then overlap := true;
              inside := true;
              ignore (Sys.opaque_identity (ref 0));
              inside := false)
        done)
  in
  let d1 = worker () and d2 = worker () in
  Domain.join d1;
  Domain.join d2;
  check_bool "critical sections never overlapped" false !overlap;
  check_bool "lock released at the end" false (Sys.file_exists path)

let test_lockfile_breaks_stale_lock () =
  let dir = temp_dir "stale" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "x.lock" in
  (* a lock held by a dead process: PID well beyond pid_max is never
     alive; creation time is recent, so only the dead-pid rule fires *)
  let oc = open_out path in
  Printf.fprintf oc "%d %.3f\n" 999_999_999 (Unix.gettimeofday ());
  close_out oc;
  let ran = ref false in
  Lockfile.with_lock ~path ~give_up_after:2. (fun () -> ran := true);
  check_bool "stale lock was broken, not waited out" true !ran;
  (* an unreadable (legacy/torn) lock file falls back to its mtime; an
     old one is broken too *)
  let oc = open_out path in
  output_string oc "not a pid stamp";
  close_out oc;
  let old = Unix.gettimeofday () -. 3600. in
  Unix.utimes path old old;
  let ran2 = ref false in
  Lockfile.with_lock ~path ~stale_after:60. ~give_up_after:2. (fun () ->
      ran2 := true);
  check_bool "ancient unreadable lock broken" true !ran2

(* the lock's timestamps, staleness test and contention sleep all go
   through an injectable clock: under a virtual clock, staleness and
   give-up behaviour are exact and instant *)
let test_lockfile_virtual_clock () =
  let dir = temp_dir "vclock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "x.lock" in
  let vnow = ref 1000.0 in
  let sleeps = ref 0 in
  let clock =
    {
      Search_resilience.Clock.now = (fun () -> !vnow);
      sleep =
        (fun d ->
          incr sleeps;
          vnow := !vnow +. d);
    }
  in
  (* a lock held by a live process (ourselves) but stamped 900 virtual
     seconds ago: stale by age, broken without any waiting *)
  let oc = open_out path in
  Printf.fprintf oc "%d %.3f\n" (Unix.getpid ()) 100.0;
  close_out oc;
  let ran = ref false in
  Lockfile.with_lock ~clock ~stale_after:60. ~give_up_after:2. ~path
    (fun () -> ran := true);
  check_bool "virtually ancient lock broken instantly" true !ran;
  check_int "no contention sleep was needed" 0 !sleeps;
  (* a fresh lock held by a live process: contention burns virtual time
     only, and gives up with a structured error *)
  let oc = open_out path in
  Printf.fprintf oc "%d %.3f\n" (Unix.getpid ()) !vnow;
  close_out oc;
  (match
     Lockfile.with_lock ~clock ~stale_after:3600. ~give_up_after:2. ~path
       (fun () -> ())
   with
  | () -> Alcotest.fail "contended fresh lock must give up"
  | exception E.Error (E.Io_failure _) -> ());
  check_bool "waiting was virtual, not real" true (!sleeps > 0)

let test_lockfile_releases_on_exception () =
  let dir = temp_dir "raise" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "x.lock" in
  (match Lockfile.with_lock ~path (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  check_bool "lock released after raise" false (Sys.file_exists path);
  (* and the path is immediately reusable *)
  Lockfile.with_lock ~path (fun () -> ())

(* ------------------------------------------------------------------ *)

let tc name speed fn = Alcotest.test_case name speed fn

let () =
  Alcotest.run "resilience"
    [
      ( "error",
        [
          tc "JSON roundtrip for every constructor" `Quick
            test_error_json_roundtrip;
          tc "tags are distinct kebab-case" `Quick test_error_tags_distinct;
          tc "classify folds exceptions into the taxonomy" `Quick
            test_error_classify;
        ] );
      ( "budget",
        [
          tc "step limit is exact" `Quick test_budget_step_limit;
          tc "seconds cap reads the injected clock" `Quick
            test_budget_seconds_with_injected_clock;
          tc "unlimited budgets and validation" `Quick
            test_budget_unlimited_and_validation;
        ] );
      ( "cancel", [ tc "token latches, first reason wins" `Quick test_cancel_latch ] );
      ( "retry",
        [
          tc "recovers from transient faults" `Quick
            test_retry_recovers_and_reports;
          tc "deterministic failures are not retried" `Quick
            test_retry_does_not_retry_deterministic_failures;
          tc "last failure is kept after exhaustion" `Quick
            test_retry_exhausts_attempts;
          tc "backoff schedule is pure and exact" `Quick
            test_retry_backoff_deterministic;
        ] );
      ( "chaos",
        [
          tc "plans are a pure function of (seed, task)" `Quick
            test_chaos_plan_deterministic;
          tc "attempts below the plan fault, then it runs" `Quick
            test_chaos_run_schedule;
          tc "disabled chaos is a no-op" `Quick test_chaos_disabled_is_free;
        ] );
      ( "supervise",
        [
          tc "chunked dispatch is observation-free" `Quick
            test_supervised_map_chunk_identity;
          tc "chaos + retries == plain run at jobs 1 and 4" `Quick
            test_supervised_map_chaos_identity;
          tc "without retries faults degrade per-item" `Quick
            test_supervised_map_insufficient_retries_fail_closed;
          tc "killed run resumes from the journal" `Quick
            test_supervised_map_resumes_from_journal;
        ] );
      ( "journal",
        [
          tc "record/resume/finish roundtrip" `Quick
            test_journal_roundtrip_and_resume;
          tc "torn trailing line is discarded" `Quick
            test_journal_tolerates_torn_tail;
        ] );
      ( "lockfile",
        [
          tc "mutual exclusion across domains" `Quick
            test_lockfile_mutual_exclusion;
          tc "stale locks are broken" `Quick test_lockfile_breaks_stale_lock;
          tc "virtual clock drives staleness and give-up" `Quick
            test_lockfile_virtual_clock;
          tc "released when the body raises" `Quick
            test_lockfile_releases_on_exception;
        ] );
    ]
