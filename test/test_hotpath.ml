(* Tests for the hot-path performance analysis family: fixture trees
   compiled with ocamlc -bin-annot, driven through [Deep.collect] with
   [~hotpath:true] and [Driver.run ~hotpath:true].

   Covers the two advertised detectors — interprocedural allocation
   budgets for [@hot] roots with their witness chains, and blocking-call
   detection from [@event_loop] select loops — plus the classifier
   exemptions (raise paths, unboxable local refs), the [@nonblocking]
   barrier, the lint.budget contract (default-zero, audited counts,
   stale entries) and the GitHub escaper round-trip. *)

module Finding = Search_analysis.Finding
module Budget = Search_analysis.Budget
module Driver = Search_analysis.Driver
module Deep = Search_analysis.Deep
module Pool = Search_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let make_tree files =
  let root = Filename.temp_file "faulty_search_hotpath" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  List.iter
    (fun (name, contents) -> write_file (Filename.concat root name) contents)
    files;
  root

(* Compile fixtures from the tree root so cmt_sourcefile comes out
   repo-relative ("lib/a.ml"), the way dune records it. *)
let compile root files =
  Sys.command
    (Printf.sprintf "cd %s && ocamlc -bin-annot -c -I lib %s >/dev/null 2>&1"
       (Filename.quote root)
       (String.concat " " files))
  = 0

let have_ocamlc = lazy (Sys.command "ocamlc -version >/dev/null 2>&1" = 0)
let with_ocamlc k = if Lazy.force have_ocamlc then k () else ()

let collect ?(budget = Budget.empty) root =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Deep.collect ~pool ~deep:false ~hotpath:true ~escape:false
    ~audited:(fun _ -> false)
    ~budget ~dirs:[ "lib" ] ~root

let by_rule rule findings =
  List.filter (fun f -> String.equal f.Finding.rule rule) findings

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s
    && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  go 0

let budget_of_string s =
  match Budget.parse s with
  | Ok b -> b
  | Error msg -> Alcotest.failf "budget parse: %s" msg

(* A stub Unix module: the blocking rule matches display names, so a
   local lib/unix.ml exercises it without linking the real library. *)
let unix_stub =
  ( "lib/unix.ml",
    "let sleep (_ : int) = ()\n\
     let select _ r w e (_ : float) = ignore e; (r, w, ([] : int list))\n" )

(* ------------------------------------------------------------------ *)

let test_alloc_chain () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [ ("lib/k.ml", "let helper x = [ x ]\nlet[@hot] kernel x = helper x\n") ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/k.ml" ]);
  let findings, units, _ = collect root in
  check_int "one unit" 1 units;
  match by_rule "hotpath-alloc" findings with
  | [ f ] ->
      check_string "at the allocation site" "lib/k.ml" f.Finding.file;
      check_int "first line" 1 f.Finding.line;
      check_bool "witness chain" true
        (contains f.Finding.message
           "K.kernel -> K.helper -> <variant allocation at lib/k.ml:1>");
      check_bool "count and budget" true
        (contains f.Finding.message "1 reachable site, budget 0")
  | fs -> Alcotest.failf "expected one hotpath-alloc, got %d" (List.length fs)

let test_alloc_within_budget () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [ ("lib/k.ml", "let helper x = [ x ]\nlet[@hot] kernel x = helper x\n") ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/k.ml" ]);
  let budget = budget_of_string "K.kernel 1  # audited: output cons\n" in
  let findings, _, stale = collect ~budget root in
  check_int "no findings" 0 (List.length (by_rule "hotpath-alloc" findings));
  check_int "entry not stale" 0 (List.length stale)

let test_alloc_exemptions () =
  with_ocamlc @@ fun () ->
  (* an unboxable local ref and a raise-path allocation are both
     exempt: the kernel holds a zero budget *)
  let root =
    make_tree
      [
        ( "lib/z.ml",
          "let[@hot] zero a =\n\
          \  let acc = ref 0. in\n\
          \  for i = 0 to Array.length a - 1 do acc := !acc +. a.(i) done;\n\
          \  if not (!acc >= 0.) then invalid_arg (string_of_float !acc);\n\
          \  !acc\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/z.ml" ]);
  let findings, _, _ = collect root in
  check_int "zero-alloc despite ref and raise path" 0
    (List.length (by_rule "hotpath-alloc" findings))

let test_blocking_chain () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        unix_stub;
        ( "lib/loop.ml",
          "let handler () = Unix.sleep 1\n\
           let[@event_loop] run () = handler ()\n" );
      ]
  in
  check_bool "fixtures compile" true
    (compile root [ "lib/unix.ml"; "lib/loop.ml" ]);
  let findings, _, _ = collect root in
  match by_rule "hotpath-blocking" findings with
  | [ f ] ->
      check_string "at the blocking reference" "lib/loop.ml" f.Finding.file;
      check_int "handler line" 1 f.Finding.line;
      check_bool "witness chain" true
        (contains f.Finding.message "Loop.run -> Loop.handler -> Unix.sleep")
  | fs ->
      Alcotest.failf "expected one hotpath-blocking, got %d" (List.length fs)

let test_nonblocking_barrier () =
  with_ocamlc @@ fun () ->
  (* the audited handler is not entered; the root's own select is the
     loop's wait and stays exempt *)
  let root =
    make_tree
      [
        unix_stub;
        ( "lib/loop.ml",
          "let[@nonblocking] handler () = Unix.sleep 1\n\
           let[@event_loop] run () =\n\
          \  handler ();\n\
          \  ignore (Unix.select [] [] [] 0.05)\n" );
      ]
  in
  check_bool "fixtures compile" true
    (compile root [ "lib/unix.ml"; "lib/loop.ml" ]);
  let findings, _, _ = collect root in
  check_int "no blocking findings" 0
    (List.length (by_rule "hotpath-blocking" findings))

let test_stale_budget () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree [ ("lib/k.ml", "let[@hot] kernel x = x + 1\n") ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/k.ml" ]);
  let budget = budget_of_string "K.kernel 0\nGone.kernel 3\n" in
  let findings, _, stale = collect ~budget root in
  check_int "no findings" 0 (List.length findings);
  (match stale with
  | [ (name, line) ] ->
      check_string "stale name" "Gone.kernel" name;
      check_int "stale line" 2 line
  | _ -> Alcotest.fail "expected exactly the Gone.kernel entry stale");
  (* the driver surfaces it and --strict fails on it *)
  (* syntactic rules off: the fixture has no .mli and is not the code
     under test here *)
  let outcome =
    Driver.run ~jobs:1 ~rules:[] ~hotpath:true ~budget ~dirs:[ "lib" ] ~root ()
  in
  check_bool "driver reports it" true
    (outcome.Driver.budget_stale = [ ("Gone.kernel", 2) ]);
  check_int "lenient passes" 0 (Driver.exit_code outcome);
  check_int "strict fails" 1 (Driver.exit_code ~strict:true outcome);
  check_bool "text renderer names it" true
    (contains
       (Driver.render_text outcome)
       "stale budget entry (lint.budget:2): 'Gone.kernel' matches no [@hot] \
        root")

let test_budget_parse () =
  (match Budget.parse "# comment\nA.f 2\nB.g 0  # trailing\n" with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok b ->
      check_bool "A.f" true (Budget.find b "A.f" = Some 2);
      check_bool "B.g" true (Budget.find b "B.g" = Some 0);
      check_bool "missing defaults upstream" true (Budget.find b "C.h" = None));
  (match Budget.parse "A.f -1\n" with
  | Error msg -> check_bool "negative rejected" true (contains msg "lint.budget:1")
  | Ok _ -> Alcotest.fail "negative count accepted");
  match Budget.parse "A.f two\n" with
  | Error msg -> check_bool "non-int rejected" true (contains msg "lint.budget:1")
  | Ok _ -> Alcotest.fail "non-integer count accepted"

let test_hotpath_jobs_invariance () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        unix_stub;
        ( "lib/loop.ml",
          "let handler () = Unix.sleep 1\n\
           let[@event_loop] run () = handler ()\n" );
        ("lib/k.ml", "let helper x = [ x ]\nlet[@hot] kernel x = helper x\n");
      ]
  in
  check_bool "fixtures compile" true
    (compile root [ "lib/unix.ml"; "lib/loop.ml"; "lib/k.ml" ]);
  let render jobs =
    Driver.render_json
      (Driver.run ~jobs ~hotpath:true ~dirs:[ "lib" ] ~root ())
  in
  check_string "jobs 1 = jobs 4 bytes" (render 1) (render 4)

let test_github_escape_roundtrip () =
  let payloads =
    [
      "plain";
      "50% of cases";
      "line one\nline two";
      "cr\rlf\n mix";
      "commas, colons: and %25 literals";
      "%0A literal then real\n";
    ]
  in
  List.iter
    (fun p ->
      let e = Finding.github_escape p in
      check_bool "no raw newline" true
        (not (String.contains e '\n') && not (String.contains e '\r'));
      check_string "roundtrip" p (Finding.github_unescape e))
    payloads

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "hotpath"
    [
      ( "alloc",
        [
          Alcotest.test_case "witness chain" `Quick test_alloc_chain;
          Alcotest.test_case "within budget" `Quick test_alloc_within_budget;
          Alcotest.test_case "exemptions" `Quick test_alloc_exemptions;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "witness chain" `Quick test_blocking_chain;
          Alcotest.test_case "nonblocking barrier" `Quick
            test_nonblocking_barrier;
        ] );
      ( "budget",
        [
          Alcotest.test_case "stale entries" `Quick test_stale_budget;
          Alcotest.test_case "parse contract" `Quick test_budget_parse;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs invariance" `Quick
            test_hotpath_jobs_invariance;
          Alcotest.test_case "github escape roundtrip" `Quick
            test_github_escape_roundtrip;
        ] );
    ]
