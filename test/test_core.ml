(* Integration tests over the public API: problem construction, strategy
   synthesis, end-to-end verification grids, and the cross-layer
   identities (simulation vs covering vs closed form) that constitute the
   reproduction's acceptance criteria. *)

module FS = Faulty_search

let checkf6 = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Problem *)

let test_problem_defaults () =
  let p = FS.Problem.line ~k:3 ~f:1 () in
  check_bool "crash default" true (p.FS.Problem.fault_kind = FS.Problem.Crash);
  checkf6 "default horizon" 1e4 p.FS.Problem.horizon;
  checkf6 "bound" (FS.Formulas.a_line ~k:3 ~f:1) (FS.Problem.bound p)

let test_problem_validation () =
  (match FS.Problem.make ~m:2 ~k:0 ~f:0 () with
  | exception
      FS.Search_error.Error (FS.Search_error.Regime_violation _) ->
      ()
  | _ -> Alcotest.fail "k=0 accepted");
  match FS.Problem.make ~m:2 ~k:1 ~f:0 ~horizon:0.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon < 1 accepted"

let test_problem_byzantine_bound () =
  let p = FS.Problem.line ~fault_kind:FS.Problem.Byzantine ~k:3 ~f:1 () in
  (* the bound reported is the crash transfer *)
  checkf6 "transfer" (FS.Byzantine.lower_bound ~k:3 ~f:1) (FS.Problem.bound p)

(* ------------------------------------------------------------------ *)
(* Solve *)

let test_solve_unsolvable () =
  let p = FS.Problem.line ~k:2 ~f:2 () in
  match FS.Solve.solve p with
  | exception
      FS.Search_error.Error (FS.Search_error.Regime_violation _) ->
      ()
  | _ -> Alcotest.fail "expected Unsolvable"

let test_solve_ratio_one () =
  let p = FS.Problem.line ~k:4 ~f:1 () in
  let s = FS.Solve.solve p in
  checkf6 "designed 1" 1. s.FS.Solve.designed_ratio;
  check_bool "no exponential strategy" true (s.FS.Solve.exponential = None);
  check_bool "no orc turns" true (FS.Solve.orc_turns s = None)

let test_solve_searching () =
  let p = FS.Problem.line ~k:3 ~f:1 () in
  let s = FS.Solve.solve p in
  checkf6 "designed = bound" s.FS.Solve.bound s.FS.Solve.designed_ratio;
  check_bool "has orc turns" true (FS.Solve.orc_turns s <> None);
  Alcotest.(check int) "k trajectories" 3
    (Array.length (FS.Solve.trajectories s))

let test_solve_custom_alpha () =
  let p = FS.Problem.line ~k:3 ~f:1 () in
  let s = FS.Solve.solve ~alpha:2.0 p in
  check_bool "designed above bound" true
    (s.FS.Solve.designed_ratio > s.FS.Solve.bound);
  checkf6 "designed matches formula"
    (FS.Formulas.exponential_ratio ~q:4 ~k:3 ~alpha:2.0)
    s.FS.Solve.designed_ratio

(* ------------------------------------------------------------------ *)
(* Verify: the acceptance grid *)

let verify_instance ?alpha ~m ~k ~f ~horizon () =
  let p = FS.Problem.make ~m ~k ~f ~horizon () in
  let s = FS.Solve.solve ?alpha p in
  FS.Verify.verify s

let test_verify_line_grid () =
  (* every meaningful line instance with k <= 5: simulation within the
     bound and ORC covering verified *)
  List.iter
    (fun (k, f) ->
      let r = verify_instance ~m:2 ~k ~f ~horizon:300. () in
      check_bool (Printf.sprintf "(k=%d,f=%d) ok" k f) true (FS.Verify.all_ok r);
      check_bool "tight" true (r.FS.Verify.gap_to_bound < 1e-9))
    [ (1, 0); (2, 1); (3, 1); (3, 2); (4, 2); (5, 2); (5, 3); (4, 3); (5, 4) ]

let test_verify_mray_grid () =
  List.iter
    (fun (m, k, f) ->
      let r = verify_instance ~m ~k ~f ~horizon:200. () in
      check_bool
        (Printf.sprintf "(m=%d,k=%d,f=%d) ok" m k f)
        true (FS.Verify.all_ok r))
    [ (3, 1, 0); (3, 2, 0); (3, 2, 1); (4, 3, 0); (4, 3, 1); (5, 4, 0); (5, 2, 0) ]

let test_verify_ratio_one_grid () =
  List.iter
    (fun (m, k, f) ->
      let r = verify_instance ~m ~k ~f ~horizon:200. () in
      check_bool "sim ok" true r.FS.Verify.simulation_ok;
      checkf6 "simulated ratio 1" 1. r.FS.Verify.simulated_ratio)
    [ (2, 2, 0); (2, 4, 1); (3, 3, 0); (3, 6, 1) ]

let test_verify_suboptimal_alpha_still_valid () =
  (* a suboptimal base still verifies against its own designed ratio *)
  let r = verify_instance ~alpha:2.2 ~m:2 ~k:3 ~f:1 ~horizon:300. () in
  check_bool "ok" true (FS.Verify.all_ok r);
  check_bool "gap positive" true (r.FS.Verify.gap_to_bound > 0.01)

let test_verify_simulated_approaches_bound () =
  (* the simulated sup-ratio approaches the bound from below as the
     horizon grows (experiment F4's shape) *)
  let ratios =
    List.map
      (fun horizon ->
        (verify_instance ~m:2 ~k:3 ~f:1 ~horizon ()).FS.Verify.simulated_ratio)
      [ 10.; 100.; 1000. ]
  in
  let bound = FS.Formulas.a_line ~k:3 ~f:1 in
  List.iter
    (fun r -> check_bool "never exceeds" true (r <= bound +. 1e-6))
    ratios;
  check_bool "last is within 1e-3" true
    (bound -. List.nth ratios 2 < 1e-3)

(* ------------------------------------------------------------------ *)
(* Cross-layer identities *)

let test_lower_bound_story_end_to_end () =
  (* the complete argument for (k=3, f=1) on a finite horizon:
     1. the strategy achieves lambda0 (simulation);
     2. coverage at lambda0 holds (upper-bound side of the relaxation);
     3. any claimed lambda 1% below is refuted (lower-bound side);
     4. the refutation threshold matches lambda0 (bisection). *)
  let p = FS.Problem.line ~k:3 ~f:1 ~horizon:400. () in
  let s = FS.Solve.solve p in
  let bound = s.FS.Solve.bound in
  let r = FS.Verify.verify s in
  check_bool "1. simulation" true r.FS.Verify.simulation_ok;
  check_bool "2. covering" true (r.FS.Verify.covering_ok = Some true);
  let turns = Option.get (FS.Solve.orc_turns s) in
  (match
     FS.Certificate.check_line ~turns ~f:1 ~lambda:(0.99 *. bound) ~n:400. ()
   with
  | FS.Certificate.Refuted_gap _ -> ()
  | v ->
      Alcotest.failf "3. expected refutation, got %a" FS.Certificate.pp_verdict
        v);
  let thr =
    FS.Certificate.coverage_threshold_lambda
      ~check:(fun ~lambda ->
        FS.Symmetric_cover.check turns ~demand:1 ~lambda ~n:400.
        = FS.Sweep.Covered)
      ~lo:3. ~hi:9. ()
  in
  check_bool "4. threshold at lambda0" true (Float.abs (thr -. bound) < 1e-3)

let test_fzero_resolves_open_question () =
  (* the f = 0 specialisation: parallel search on m rays, the question of
     Baeza-Yates et al., Kao et al., and Bernstein et al. *)
  List.iter
    (fun (m, k) ->
      let rho = float_of_int m /. float_of_int k in
      let expected = (2. *. FS.Formulas.mu_rho rho) +. 1. in
      checkf6
        (Printf.sprintf "m=%d k=%d" m k)
        expected
        (FS.Formulas.a_mray ~m ~k ~f:0);
      (* and the strategy attains it *)
      let r = verify_instance ~m ~k ~f:0 ~horizon:150. () in
      check_bool "attained" true (FS.Verify.all_ok r))
    [ (3, 2); (4, 3); (5, 3) ]

let test_byzantine_transfer_end_to_end () =
  (* the crash certificate applies verbatim to Byzantine robots, and the
     conservative announcement rule is strictly harder: its worst case is
     the (2f+1)-st visit, never earlier than the crash model's (f+1)-st *)
  let p = FS.Problem.line ~k:3 ~f:1 ~horizon:100. () in
  let s = FS.Solve.solve p in
  let trs = FS.Solve.trajectories s in
  let target = FS.World.point FS.World.line ~ray:0 ~dist:17.3 in
  let byz =
    FS.Byzantine_sim.worst_case_detection trs ~f:1 ~target ~horizon:1000.
  in
  check_bool "byzantine = crash with 2f faults" true
    (byz = FS.Engine.detection_time_worst trs ~f:2 ~target ~horizon:1000.);
  match
    (byz, FS.Engine.detection_time_worst trs ~f:1 ~target ~horizon:1000.)
  with
  | Some b, Some c -> check_bool "B-side never easier" true (b >= c)
  | _ -> Alcotest.fail "expected detections"

let test_event_log_detects () =
  let p = FS.Problem.line ~k:3 ~f:1 ~horizon:100. () in
  let s = FS.Solve.solve p in
  let trs = FS.Solve.trajectories s in
  let target = FS.World.point FS.World.line ~ray:1 ~dist:9.4 in
  let fv = FS.Engine.first_visits trs ~target ~horizon:500. in
  let assignment =
    FS.Fault.worst_for_visits FS.Fault.Crash ~first_visits:fv ~f:1
  in
  let entries =
    FS.Event_log.narrate_crash trs ~assignment ~target ~horizon:500.
  in
  check_bool "nonempty narration" true (List.length entries > 3);
  (* the last entry is the confirmation and its time matches the engine *)
  let last = List.nth entries (List.length entries - 1) in
  let detection =
    Option.get (FS.Engine.detection_time_worst trs ~f:1 ~target ~horizon:500.)
  in
  checkf6 "confirmation time" detection last.FS.Event_log.time


(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_searching () =
  let p = FS.Problem.line ~k:3 ~f:1 ~horizon:200. () in
  let r = FS.Report.build p in
  check_bool "regime" true (r.FS.Report.regime = FS.Params.Searching);
  checkf6 "bound" (FS.Formulas.a_line ~k:3 ~f:1) r.FS.Report.bound;
  check_bool "simulated close to exact" true
    (Float.abs (r.FS.Report.simulated_ratio -. r.FS.Report.exact_sup) < 1e-4);
  check_bool "covering verified" true (r.FS.Report.covering_ok = Some true);
  (match r.FS.Report.certificate_below with
  | Some (FS.Certificate.Refuted_gap _ | FS.Certificate.Refuted_potential _) -> ()
  | v ->
      Alcotest.failf "expected refutation, got %s"
        (match v with None -> "none" | Some _ -> "non-refuting verdict"));
  check_bool "byzantine transfer present" true
    (Option.equal Float.equal r.FS.Report.byzantine_transfer
       (Some r.FS.Report.bound))

let test_report_ratio_one () =
  let p = FS.Problem.line ~k:4 ~f:1 ~horizon:100. () in
  let r = FS.Report.build p in
  check_bool "regime" true (r.FS.Report.regime = FS.Params.Ratio_one);
  checkf6 "exact sup is 1" 1. r.FS.Report.exact_sup;
  check_bool "no certificate outside searching" true
    (r.FS.Report.certificate_below = None)

let test_report_markdown_renders () =
  let p = FS.Problem.line ~k:3 ~f:1 ~horizon:100. () in
  let md = FS.Report.to_markdown (FS.Report.build p) in
  check_bool "has title" true
    (String.length md > 0
    && String.sub md 0 17 = "# Instance report");
  check_bool "mentions the bound" true
    (let needle = "5.233069" in
     let rec search i =
       i + String.length needle <= String.length md
       && (String.sub md i (String.length needle) = needle || search (i + 1))
     in
     search 0)

let test_report_mray () =
  let p = FS.Problem.make ~m:3 ~k:2 ~f:0 ~horizon:150. () in
  let r = FS.Report.build p in
  checkf6 "bound" (FS.Formulas.a_mray ~m:3 ~k:2 ~f:0) r.FS.Report.bound;
  check_bool "certificate runs for m > 2 too" true
    (r.FS.Report.certificate_below <> None);
  check_bool "no byzantine figure off the line" true
    (r.FS.Report.byzantine_transfer = None)

(* ------------------------------------------------------------------ *)
(* properties *)

let gen_any_instance =
  QCheck2.Gen.(
    let* m = int_range 2 4 in
    let* f = int_range 0 2 in
    let* k = int_range (f + 1) (m * (f + 1)) in
    return (m, k, f))

let prop_verify_all_regimes =
  QCheck2.Test.make ~count:10 ~name:"verify passes across regimes"
    gen_any_instance (fun (m, k, f) ->
      let r = verify_instance ~m ~k ~f ~horizon:100. () in
      FS.Verify.all_ok r)

let prop_simulated_never_exceeds_designed =
  QCheck2.Test.make ~count:10 ~name:"simulated <= designed ratio"
    gen_any_instance (fun (m, k, f) ->
      let r = verify_instance ~m ~k ~f ~horizon:80. () in
      r.FS.Verify.simulated_ratio
      <= r.FS.Verify.solution.FS.Solve.designed_ratio +. 1e-6)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_verify_all_regimes; prop_simulated_never_exceeds_designed ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "problem",
        [
          tc "defaults" `Quick test_problem_defaults;
          tc "validation" `Quick test_problem_validation;
          tc "byzantine bound" `Quick test_problem_byzantine_bound;
        ] );
      ( "solve",
        [
          tc "unsolvable" `Quick test_solve_unsolvable;
          tc "ratio one" `Quick test_solve_ratio_one;
          tc "searching" `Quick test_solve_searching;
          tc "custom alpha" `Quick test_solve_custom_alpha;
        ] );
      ( "verify",
        [
          tc "line grid" `Slow test_verify_line_grid;
          tc "m-ray grid" `Slow test_verify_mray_grid;
          tc "ratio-one grid" `Quick test_verify_ratio_one_grid;
          tc "suboptimal alpha" `Quick test_verify_suboptimal_alpha_still_valid;
          tc "horizon convergence" `Quick test_verify_simulated_approaches_bound;
        ] );
      ( "cross-layer",
        [
          tc "lower-bound story" `Quick test_lower_bound_story_end_to_end;
          tc "f=0 open question" `Quick test_fzero_resolves_open_question;
          tc "byzantine transfer" `Quick test_byzantine_transfer_end_to_end;
          tc "event log detects" `Quick test_event_log_detects;
        ] );
      ( "report",
        [
          tc "searching instance" `Quick test_report_searching;
          tc "ratio-one instance" `Quick test_report_ratio_one;
          tc "markdown renders" `Quick test_report_markdown_renders;
          tc "m-ray instance" `Quick test_report_mray;
        ] );
      ("properties", properties);
    ]
