(* Tests for the covering layer: the ±-covering and ORC relaxations, the
   assigned-interval construction, the potential function (the heart of
   the lower-bound proofs), the certificates, and the fractional
   relaxation with its rational-approximation reduction. *)

module P = Search_bounds.Params
module F = Search_bounds.Formulas
module Turning = Search_strategy.Turning
module Mray = Search_strategy.Mray_exponential
module Sym = Search_covering.Symmetric
module Orc = Search_covering.Orc
module A = Search_covering.Assigned
module Pot = Search_covering.Potential
module Cert = Search_covering.Certificate
module Frac = Search_covering.Fractional
module Sweep = Search_numerics.Sweep

let checkf6 = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lam31 = F.a_line ~k:3 ~f:1
let turns31 () = Orc.of_mray_group (Mray.make (P.line ~k:3 ~f:1))
let doubling = Turning.geometric ~scale:0.5 ~alpha:2. ()

(* ------------------------------------------------------------------ *)
(* Symmetric (±-covering) *)

let test_sym_optimal_covers_at_bound () =
  let turns = turns31 () in
  check_bool "covered at lambda0 + eps" true
    (Sym.check turns ~demand:1 ~lambda:(lam31 +. 1e-6) ~n:500. = Sweep.Covered)

let test_sym_fails_below_bound () =
  let turns = turns31 () in
  match Sym.check turns ~demand:1 ~lambda:(lam31 -. 0.05) ~n:500. with
  | Sweep.Covered -> Alcotest.fail "covering below the bound?!"
  | Sweep.Gap { multiplicity; _ } -> check_int "zero-covered gap" 0 multiplicity

let test_sym_doubling_cow_at_nine () =
  check_bool "doubling covers at 9 + eps" true
    (Sym.check [| doubling |] ~demand:1 ~lambda:(9. +. 1e-9) ~n:500.
    = Sweep.Covered);
  check_bool "doubling fails at 8.9" true
    (Sym.check [| doubling |] ~demand:1 ~lambda:8.9 ~n:500. <> Sweep.Covered)

let test_sym_max_covered_monotone_in_lambda () =
  let turns = [| doubling |] in
  let m1 = Sym.max_covered turns ~demand:1 ~lambda:7. ~n:1e4 in
  let m2 = Sym.max_covered turns ~demand:1 ~lambda:8. ~n:1e4 in
  let m3 = Sym.max_covered turns ~demand:1 ~lambda:9.1 ~n:1e4 in
  check_bool "monotone" true (m1 <= m2 && m2 <= m3);
  checkf6 "full at 9.1" 1e4 m3

let test_sym_intervals_within_window () =
  let ivs = Sym.cover_intervals_within doubling ~lambda:9. ~within:(1., 64.) () in
  check_bool "nonempty" true (List.length ivs > 3);
  List.iter
    (fun (i, (iv : Search_numerics.Interval1.t)) ->
      check_bool
        (Printf.sprintf "interval %d intersects window" i)
        true
        (iv.Search_numerics.Interval1.hi >= 1.
        && iv.Search_numerics.Interval1.lo <= 64.))
    ivs

(* ------------------------------------------------------------------ *)
(* ORC *)

let test_orc_optimal_covers_qfold () =
  let turns = turns31 () in
  check_bool "4-fold at lambda0 + eps" true
    (Orc.check turns ~demand:4 ~lambda:(lam31 +. 1e-6) ~n:500. = Sweep.Covered)

let test_orc_demand_strictness () =
  let turns = turns31 () in
  (* the optimal strategy covers exactly q-fold, not (q+1)-fold *)
  check_bool "5-fold fails" true
    (Orc.check turns ~demand:5 ~lambda:(lam31 +. 1e-6) ~n:500. <> Sweep.Covered)

let test_orc_of_mray_geometric () =
  let strat = Mray.make (P.line ~k:3 ~f:1) in
  let t = Orc.of_mray strat ~robot:0 in
  let a = Mray.alpha strat in
  checkf6 "consecutive depth ratio alpha^k"
    (a ** 3.)
    (Turning.get t 5 /. Turning.get t 4)

let test_orc_mray_covering_demand () =
  (* m = 3, k = 2, f = 0: q = 3-fold covering in the ORC setting *)
  let strat = Mray.make (P.make ~m:3 ~k:2 ~f:0) in
  let turns = Orc.of_mray_group strat in
  let lambda = Mray.predicted_ratio strat +. 1e-6 in
  check_bool "3-fold covered" true
    (Orc.check turns ~demand:3 ~lambda ~n:300. = Sweep.Covered)

(* ------------------------------------------------------------------ *)
(* Assigned *)

let mu31 = (lam31 -. 1.) /. 2.

let test_assigned_build_complete_orc () =
  let turns = turns31 () in
  match A.build A.Orc_setting ~mu:mu31 ~demand:4 ~turns ~up_to:200. () with
  | A.Complete ivs ->
      check_bool "nonempty" true (List.length ivs > 8);
      (* frontier multiset ends past the target *)
      let ms = A.frontier_multiset ~demand:4 ivs in
      check_bool "frontier reached" true (List.hd ms >= 200.)
  | A.Stuck { frontier; _ } -> Alcotest.failf "stuck at %g" frontier

let test_assigned_build_complete_line () =
  let turns = turns31 () in
  match A.build A.Line_symmetric ~mu:mu31 ~demand:1 ~turns ~up_to:200. () with
  | A.Complete ivs -> check_bool "nonempty" true (List.length ivs > 5)
  | A.Stuck { frontier; _ } -> Alcotest.failf "stuck at %g" frontier

let test_assigned_intervals_start_at_frontier () =
  (* exactness: each interval's left end is the frontier when added, so
     replaying the multiset reproduces the lefts *)
  let turns = turns31 () in
  match A.build A.Orc_setting ~mu:mu31 ~demand:4 ~turns ~up_to:100. () with
  | A.Stuck _ -> Alcotest.fail "stuck"
  | A.Complete ivs ->
      let ms = ref (List.init 4 (fun _ -> 1.)) in
      List.iter
        (fun (iv : A.interval) ->
          (match !ms with
          | a :: rest ->
              checkf6 "left = frontier" a iv.A.left;
              let rec ins x = function
                | [] -> [ x ]
                | y :: r -> if x <= y then x :: y :: r else y :: ins x r
              in
              ms := ins iv.A.turn rest
          | [] -> Alcotest.fail "empty multiset"))
        ivs

let test_assigned_respects_load_constraint () =
  (* ORC constraint (14): when an interval starts at a, the owner's load
     before the step is at most mu * a *)
  let turns = turns31 () in
  match A.build A.Orc_setting ~mu:mu31 ~demand:4 ~turns ~up_to:100. () with
  | A.Stuck _ -> Alcotest.fail "stuck"
  | A.Complete ivs ->
      let loads = Array.make 3 0. in
      List.iter
        (fun (iv : A.interval) ->
          check_bool "L <= mu a" true
            (loads.(iv.A.robot) <= (mu31 *. iv.A.left) +. 1e-6);
          loads.(iv.A.robot) <- loads.(iv.A.robot) +. iv.A.turn)
        ivs

let test_assigned_line_constraint () =
  (* line constraint (5): turn <= mu a - load *)
  let turns = turns31 () in
  match A.build A.Line_symmetric ~mu:mu31 ~demand:1 ~turns ~up_to:100. () with
  | A.Stuck _ -> Alcotest.fail "stuck"
  | A.Complete ivs ->
      let loads = Array.make 3 0. in
      List.iter
        (fun (iv : A.interval) ->
          check_bool "t <= mu a - L" true
            (iv.A.turn <= (mu31 *. iv.A.left) -. loads.(iv.A.robot) +. 1e-6);
          loads.(iv.A.robot) <- loads.(iv.A.robot) +. iv.A.turn)
        ivs

let test_assigned_stuck_when_impossible () =
  (* at mu = 1 a doubling robot's round intervals [2^(i-1) - 1, 2^(i-1)]
     have interior multiplicity at most 1: 2-fold coverage is impossible
     and the greedy must get stuck.  (At larger mu a single ORC robot CAN
     multi-cover — rounds count separately — which is why this test pins
     mu = 1.) *)
  match
    A.build A.Orc_setting ~mu:1. ~demand:2 ~turns:[| doubling |] ~up_to:50. ()
  with
  | A.Stuck _ -> ()
  | A.Complete _ -> Alcotest.fail "impossible demand satisfied"

let test_assigned_loads_accessor () =
  let ivs =
    [
      { A.robot = 0; left = 1.; turn = 2. };
      { A.robot = 1; left = 1.; turn = 3. };
      { A.robot = 0; left = 2.; turn = 5. };
    ]
  in
  let l = A.loads ivs ~robots:2 in
  checkf6 "robot 0" 7. l.(0);
  checkf6 "robot 1" 3. l.(1)

(* ------------------------------------------------------------------ *)
(* Potential *)

let test_potential_delta_matches_lemma () =
  checkf6 "line delta"
    (Search_bounds.Lemma.delta ~s:1 ~k:3 ~mu:2.)
    (Pot.delta A.Line_symmetric ~k:3 ~demand:1 ~mu:2.);
  checkf6 "orc delta uses q - k"
    (Search_bounds.Lemma.delta ~s:1 ~k:3 ~mu:2.)
    (Pot.delta A.Orc_setting ~k:3 ~demand:4 ~mu:2.)

let test_potential_step_ratios_at_bound () =
  (* at exactly lambda0, delta = 1 and every step ratio is >= 1 *)
  let turns = turns31 () in
  (match A.build A.Orc_setting ~mu:mu31 ~demand:4 ~turns ~up_to:300. () with
  | A.Stuck _ -> Alcotest.fail "stuck"
  | A.Complete ivs ->
      let tr = Pot.analyze A.Orc_setting ~k:3 ~demand:4 ~mu:mu31 ivs in
      checkf6 "delta is 1" 1. tr.Pot.delta;
      List.iter
        (fun st ->
          match st.Pot.step_ratio with
          | Some r ->
              check_bool
                (Printf.sprintf "step %d ratio >= delta" st.Pot.index)
                true
                (r >= tr.Pot.delta -. 1e-6)
          | None -> ())
        tr.Pot.steps;
      check_bool "bounded by ceiling" true (not tr.Pot.exceeded));
  match A.build A.Line_symmetric ~mu:mu31 ~demand:1 ~turns ~up_to:300. () with
  | A.Stuck _ -> Alcotest.fail "stuck"
  | A.Complete ivs ->
      let tr = Pot.analyze A.Line_symmetric ~k:3 ~demand:1 ~mu:mu31 ivs in
      List.iter
        (fun st ->
          match st.Pot.step_ratio with
          | Some r -> check_bool "line ratio >= 1" true (r >= 1. -. 1e-6)
          | None -> ())
        tr.Pot.steps;
      check_bool "line bounded" true (not tr.Pot.exceeded)

let test_potential_growth_below_bound () =
  (* a single robot covering [1, ~1.9] at lambda = 8 < 9: steps must grow
     the potential by at least delta(mu=3.5) each *)
  let padded =
    Turning.of_list_then [ 0.5; 1.0; 1.9; 3.5 ]
      (fun i -> 3.5 *. (2. ** float_of_int (i - 4)))
  in
  let mu = 3.5 in
  match A.build A.Line_symmetric ~mu ~demand:1 ~turns:[| padded |] ~up_to:1.85 () with
  | A.Stuck { frontier; _ } -> Alcotest.failf "stuck at %g" frontier
  | A.Complete ivs ->
      let tr = Pot.analyze A.Line_symmetric ~k:1 ~demand:1 ~mu ivs in
      check_bool "delta > 1 below bound" true (tr.Pot.delta > 1.);
      List.iter
        (fun st ->
          match st.Pot.step_ratio with
          | Some r ->
              check_bool "growth at least delta" true (r >= tr.Pot.delta -. 1e-6)
          | None -> ())
        tr.Pot.steps

let test_potential_ceiling_respected_on_valid_covers () =
  (* eq (8): any valid assignment keeps ln f <= ks ln mu *)
  let turns = turns31 () in
  List.iter
    (fun slack ->
      let mu = mu31 *. slack in
      match A.build A.Line_symmetric ~mu ~demand:1 ~turns ~up_to:200. () with
      | A.Stuck _ -> () (* narrower mu may legitimately fail *)
      | A.Complete ivs ->
          let tr = Pot.analyze A.Line_symmetric ~k:3 ~demand:1 ~mu ivs in
          check_bool
            (Printf.sprintf "ceiling at slack %g" slack)
            true (not tr.Pot.exceeded))
    [ 1.0; 1.05; 1.2 ]

(* ------------------------------------------------------------------ *)
(* Certificate *)

let test_cert_gap_below_bound () =
  let turns = turns31 () in
  (match Cert.check_line ~turns ~f:1 ~lambda:(lam31 -. 0.05) ~n:500. () with
  | Cert.Refuted_gap { multiplicity; demand; _ } ->
      check_int "demand s=1" 1 demand;
      check_int "gap multiplicity" 0 multiplicity
  | v -> Alcotest.failf "expected gap refutation, got %a" Cert.pp_verdict v);
  match Cert.check_orc ~turns ~demand:4 ~lambda:(lam31 -. 0.05) ~n:500. () with
  | Cert.Refuted_gap { demand; _ } -> check_int "demand q=4" 4 demand
  | v -> Alcotest.failf "expected gap refutation, got %a" Cert.pp_verdict v

let test_cert_not_refuted_at_bound () =
  let turns = turns31 () in
  (match Cert.check_line ~turns ~f:1 ~lambda:(lam31 +. 1e-6) ~n:500. () with
  | Cert.Not_refuted { delta; _ } ->
      check_bool "delta <= 1 above the bound" true (delta <= 1.)
  | v -> Alcotest.failf "expected not-refuted, got %a" Cert.pp_verdict v);
  match Cert.check_orc ~turns ~demand:4 ~lambda:(lam31 +. 1e-6) ~n:500. () with
  | Cert.Not_refuted _ -> ()
  | v -> Alcotest.failf "expected not-refuted, got %a" Cert.pp_verdict v

let test_cert_finite_cover_below_bound_consistent () =
  (* a padded strategy covering a short prefix below the bound is NOT
     refuted on that prefix (finite horizons are coverable) *)
  let padded =
    Turning.of_list_then [ 0.5; 1.0; 1.9; 3.5 ]
      (fun i -> 3.5 *. (2. ** float_of_int (i - 4)))
  in
  match Cert.check_line ~turns:[| padded |] ~f:0 ~lambda:8. ~n:1.85 () with
  | Cert.Not_refuted { delta; _ } -> check_bool "delta > 1" true (delta > 1.)
  | v -> Alcotest.failf "expected not-refuted, got %a" Cert.pp_verdict v

let test_cert_validation () =
  let turns = turns31 () in
  (match Cert.check_line ~turns ~f:0 ~lambda:5. ~n:10. () with
  | exception Invalid_argument _ -> () (* s = 2*1 - 3 < 1 *)
  | _ -> Alcotest.fail "bad s accepted");
  match Cert.check_orc ~turns ~demand:3 ~lambda:5. ~n:10. () with
  | exception Invalid_argument _ -> () (* demand <= k *)
  | _ -> Alcotest.fail "demand <= k accepted"

let test_cert_threshold_bisection () =
  (* the lambda at which the optimal strategy's coverage kicks in is the
     theorem's bound, up to horizon effects *)
  let turns = turns31 () in
  let check ~lambda =
    Sym.check turns ~demand:1 ~lambda ~n:300. = Sweep.Covered
  in
  let thr = Cert.coverage_threshold_lambda ~check ~lo:3. ~hi:9. () in
  check_bool "threshold within 1e-3 of lambda0" true
    (Float.abs (thr -. lam31) < 1e-3)

let test_cert_log_horizon_bound () =
  (* finite below the bound, infinite at/above, increasing toward it *)
  let lhb lambda =
    Cert.log_horizon_bound A.Line_symmetric ~k:3 ~demand:1 ~lambda ()
  in
  check_bool "infinite at the bound" true
    (Float.equal (lhb (lam31 +. 1e-9)) infinity);
  let a = lhb (lam31 -. 0.5) and b = lhb (lam31 -. 0.1) in
  check_bool "finite below" true (Float.is_finite a && Float.is_finite b);
  check_bool "grows toward the bound" true (a < b)

let test_cert_horizon_bound_dominates_construction () =
  (* whatever we actually manage to cover below the bound stays under the
     theoretical horizon bound *)
  let lambda = 8. in
  let padded =
    Turning.of_list_then [ 0.5; 1.0; 1.9; 3.5 ]
      (fun i -> 3.5 *. (2. ** float_of_int (i - 4)))
  in
  let covered = Sym.max_covered [| padded |] ~demand:1 ~lambda ~n:1e6 in
  let lhb =
    Cert.log_horizon_bound A.Line_symmetric ~k:1 ~demand:1 ~lambda ()
  in
  check_bool "construction below theory" true (log covered < lhb)

(* ------------------------------------------------------------------ *)
(* Fractional *)

let test_frac_uniform_fleet_covers () =
  (* the integer q-fold cover with k robots is an eta = q/k fractional
     cover with weights 1/k *)
  let turns = turns31 () in
  let fleet = Frac.uniform_fleet ~k:3 turns in
  let eta = 4. /. 3. in
  check_bool "covered at lambda0" true
    (Frac.check fleet ~eta ~lambda:(lam31 +. 1e-6) ~n:300. = Frac.Covered)

let test_frac_gap_below () =
  let turns = turns31 () in
  let fleet = Frac.uniform_fleet ~k:3 turns in
  match Frac.check fleet ~eta:(4. /. 3.) ~lambda:(lam31 -. 0.05) ~n:300. with
  | Frac.Covered -> Alcotest.fail "covered below the bound"
  | Frac.Gap { weight; _ } ->
      check_bool "weight short of eta" true (weight < (4. /. 3.))

let test_frac_split_preserves_coverage () =
  let turns = turns31 () in
  let fleet = Frac.uniform_fleet ~k:3 turns in
  let split_fleet =
    List.concat_map (fun w -> Frac.split w ~parts:3) fleet
  in
  let eta = 4. /. 3. in
  check_bool "split fleet still covers" true
    (Frac.check split_fleet ~eta ~lambda:(lam31 +. 1e-6) ~n:300. = Frac.Covered);
  checkf6 "total weight preserved" 1.
    (List.fold_left (fun a w -> a +. w.Frac.weight) 0. split_fleet)

let test_frac_upper_approximations_converge () =
  let eta = 2.5 in
  let approxs = Frac.upper_approximations ~eta ~count:8 in
  let values = List.map snd approxs in
  let target = Frac.c_eta eta in
  (* all above the limit, decreasing toward it *)
  List.iter
    (fun v -> check_bool "above C(eta)" true (v >= target -. 1e-9))
    values;
  let last = List.nth values (List.length values - 1) in
  check_bool "last within 1e-3" true (last -. target < 1e-3)

let test_frac_lower_bound_eps_converges () =
  let eta = 2.5 in
  let target = Frac.c_eta eta in
  let v1 = Frac.lower_bound_eps ~eta ~eps:0.1 in
  let v2 = Frac.lower_bound_eps ~eta ~eps:0.01 in
  let v3 = Frac.lower_bound_eps ~eta ~eps:0.001 in
  check_bool "increasing in precision" true (v1 < v2 && v2 < v3);
  check_bool "below the limit" true (v3 <= target);
  check_bool "close" true (target -. v3 < 0.05)

let test_frac_c_eta_anchors () =
  checkf6 "C(2) = 9" 9. (Frac.c_eta 2.);
  checkf6 "C(3/2) matches lambda0(3,2)" (F.lambda0 ~q:3 ~k:2) (Frac.c_eta 1.5)



(* ------------------------------------------------------------------ *)
(* Certificate_io *)

module CIO = Search_covering.Certificate_io

let cert_roundtrip verdict =
  let json_s =
    CIO.export_string ~setting:A.Line_symmetric ~k:3 ~demand:1
      ~lambda:(0.99 *. lam31) ~n:200. verdict
  in
  match CIO.parse_string json_s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_cio_roundtrip_gap () =
  let turns = turns31 () in
  let verdict =
    Cert.check_line ~turns ~f:1 ~lambda:(0.99 *. lam31) ~n:200. ()
  in
  let p = cert_roundtrip verdict in
  check_int "k" 3 p.CIO.k;
  check_int "demand" 1 p.CIO.demand;
  (match (verdict, p.CIO.kind) with
  | ( Cert.Refuted_gap { at; multiplicity; _ },
      CIO.Refuted_gap { at = at'; multiplicity = m' } ) ->
      checkf6 "witness" at at';
      check_int "multiplicity" multiplicity m'
  | _ -> Alcotest.fail "kind mismatch")

let test_cio_roundtrip_not_refuted () =
  let turns = turns31 () in
  let verdict = Cert.check_line ~turns ~f:1 ~lambda:(lam31 +. 1e-6) ~n:200. () in
  let json_s =
    CIO.export_string ~setting:A.Line_symmetric ~k:3 ~demand:1
      ~lambda:(lam31 +. 1e-6) ~n:200. verdict
  in
  match CIO.parse_string json_s with
  | Ok { CIO.kind = CIO.Not_refuted { delta }; _ } ->
      check_bool "delta at the bound" true (Float.abs (delta -. 1.) < 1e-3)
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_cio_recheck_confirms () =
  let turns = turns31 () in
  let lambda = 0.99 *. lam31 in
  let verdict = Cert.check_line ~turns ~f:1 ~lambda ~n:200. () in
  let json_s =
    CIO.export_string ~setting:A.Line_symmetric ~k:3 ~demand:1 ~lambda ~n:200.
      verdict
  in
  match CIO.parse_string json_s with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p -> (
      match CIO.recheck p ~turns with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recheck: %s" e)

let test_cio_recheck_detects_tampering () =
  (* a certificate claiming "not refuted" at a sub-bound lambda must be
     rejected on recheck (the recomputation refutes) *)
  let turns = turns31 () in
  let tampered =
    {
      CIO.setting = A.Line_symmetric;
      k = 3;
      demand = 1;
      lambda = 0.99 *. lam31;
      n = 200.;
      kind = CIO.Not_refuted { delta = 1.0 };
    }
  in
  match CIO.recheck tampered ~turns with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered certificate confirmed"

let test_cio_recheck_wrong_k () =
  let turns = turns31 () in
  let lambda = 0.99 *. lam31 in
  let verdict = Cert.check_line ~turns ~f:1 ~lambda ~n:200. () in
  let json_s =
    CIO.export_string ~setting:A.Line_symmetric ~k:3 ~demand:1 ~lambda ~n:200.
      verdict
  in
  match CIO.parse_string json_s with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p -> (
      match CIO.recheck p ~turns:[| doubling |] with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "wrong arity accepted")

let test_cio_parse_rejects_garbage () =
  (match CIO.parse_string "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty object accepted");
  match CIO.parse_string "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-json accepted"


let build_doc () =
  let turns = turns31 () in
  match A.build A.Orc_setting ~mu:mu31 ~demand:4 ~turns ~up_to:100. () with
  | A.Complete ivs ->
      {
        CIO.a_setting = A.Orc_setting;
        a_k = 3;
        a_demand = 4;
        a_mu = mu31;
        intervals = ivs;
      }
  | A.Stuck _ -> Alcotest.fail "assignment stuck"

let test_cio_assignment_roundtrip () =
  let doc = build_doc () in
  let json = CIO.export_assignment doc in
  match CIO.parse_assignment json with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok doc' ->
      check_int "interval count preserved"
        (List.length doc.CIO.intervals)
        (List.length doc'.CIO.intervals);
      check_bool "identical" true (doc = doc')

let test_cio_assignment_checks () =
  let doc = build_doc () in
  match CIO.check_assignment doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid assignment rejected: %s" e

let test_cio_assignment_detects_gap () =
  (* drop an interval: the frontier no longer matches the next left end *)
  let doc = build_doc () in
  let tampered =
    match doc.CIO.intervals with
    | a :: _ :: rest -> { doc with CIO.intervals = a :: rest }
    | _ -> Alcotest.fail "too few intervals"
  in
  match CIO.check_assignment tampered with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gapped assignment accepted"

let test_cio_assignment_detects_overload () =
  (* attribute every interval to robot 0: its load constraint breaks *)
  let doc = build_doc () in
  let tampered =
    {
      doc with
      CIO.intervals =
        List.map (fun iv -> { iv with A.robot = 0 }) doc.CIO.intervals;
    }
  in
  match CIO.check_assignment tampered with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overloaded robot accepted"

(* ------------------------------------------------------------------ *)
(* Frontier *)

module Frontier = Search_covering.Frontier

let test_frontier_validation () =
  (match Frontier.line_single ~lambda:9. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lambda >= 9 accepted");
  match Frontier.line_single ~lambda:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lambda <= 1 accepted"

let test_frontier_coverage_verified () =
  (* the greedy turns really do 1-fold lambda-cover [1, horizon] *)
  List.iter
    (fun lambda ->
      let r = Frontier.line_single ~lambda in
      let last = r.Frontier.horizon in
      let nsteps = List.length r.Frontier.turns in
      let turns =
        Turning.of_list_then r.Frontier.turns (fun i ->
            last *. (2. ** float_of_int (i - nsteps)))
      in
      match
        Sym.check [| turns |] ~demand:1 ~lambda ~n:(0.999 *. last)
      with
      | Sweep.Covered -> ()
      | Sweep.Gap { at; _ } ->
          Alcotest.failf "lambda=%g: gap at %g (horizon %g)" lambda at last)
    [ 6.0; 7.5; 8.0; 8.7 ]

let test_frontier_is_maximal () =
  (* perturbing any turn upward breaks contiguity; the greedy budget is
     tight: t_i = mu t_{i-1} - sum_{<i} exactly *)
  let lambda = 8.0 in
  let mu = (lambda -. 1.) /. 2. in
  let r = Frontier.line_single ~lambda in
  let rec check sum prev = function
    | [] -> ()
    | t :: rest ->
        Alcotest.(check (float 1e-9))
          "tight budget" ((mu *. prev) -. sum) t;
        check (sum +. t) t rest
  in
  (match r.Frontier.turns with
  | first :: rest ->
      Alcotest.(check (float 1e-9)) "t1 = mu" mu first;
      check first first rest
  | [] -> Alcotest.fail "no turns")

let test_frontier_monotone_and_divergent () =
  let h l = Frontier.line_single_horizon ~lambda:l in
  check_bool "monotone in lambda" true (h 6. < h 7. && h 7. < h 8. && h 8. < h 8.9);
  check_bool "diverges near 9" true (h 8.99 > 1e10)

let test_frontier_below_theoretical_cap () =
  List.iter
    (fun (lambda, reach, cap) ->
      check_bool
        (Printf.sprintf "lambda=%g" lambda)
        true (reach < cap))
    (Frontier.horizon_curve ~lambdas:[ 6.0; 7.0; 8.0; 8.5; 8.9 ])

let test_frontier_discriminant () =
  check_bool "negative below 9" true
    (Frontier.characteristic_discriminant ~lambda:8. < 0.);
  Alcotest.(check (float 1e-12)) "zero at 9" 0.
    (Frontier.characteristic_discriminant ~lambda:9.)

(* ------------------------------------------------------------------ *)
(* properties *)

let gen_line_instance =
  QCheck2.Gen.(
    let* f = int_range 0 2 in
    let* k = int_range (f + 1) ((2 * (f + 1)) - 1) in
    return (k, f))

let prop_optimal_strategy_covers_at_its_bound =
  QCheck2.Test.make ~count:8 ~name:"optimal strategy covers at lambda0 + eps"
    gen_line_instance (fun (k, f) ->
      let strat = Mray.make (P.line ~k ~f) in
      let turns = Orc.of_mray_group strat in
      let lambda = Mray.predicted_ratio strat +. 1e-6 in
      let s = (2 * (f + 1)) - k in
      Sym.check turns ~demand:s ~lambda ~n:200. = Sweep.Covered)

let prop_certificate_refutes_below =
  QCheck2.Test.make ~count:8 ~name:"certificate refutes 1% below the bound"
    gen_line_instance (fun (k, f) ->
      let strat = Mray.make (P.line ~k ~f) in
      let turns = Orc.of_mray_group strat in
      let lambda = 0.99 *. Mray.predicted_ratio strat in
      match Cert.check_line ~turns ~f ~lambda ~n:200. () with
      | Cert.Refuted_gap _ | Cert.Refuted_potential _ -> true
      | Cert.Not_refuted _ | Cert.Inconclusive _ -> false)

let prop_assignment_covers_exactly =
  (* replaying the assignment's intervals gives exact demand-fold coverage
     up to the reached frontier *)
  QCheck2.Test.make ~count:8 ~name:"assignment is exactly demand-fold"
    gen_line_instance (fun (k, f) ->
      let strat = Mray.make (P.line ~k ~f) in
      let turns = Orc.of_mray_group strat in
      let q = 2 * (f + 1) in
      let mu = (Mray.predicted_ratio strat -. 1.) /. 2. in
      match A.build A.Orc_setting ~mu ~demand:q ~turns ~up_to:50. () with
      | A.Stuck _ -> false
      | A.Complete ivs ->
          let module I = Search_numerics.Interval1 in
          let intervals =
            List.filter_map
              (fun (iv : A.interval) ->
                if iv.A.turn > iv.A.left then
                  Some (I.left_open iv.A.left iv.A.turn)
                else None)
              ivs
          in
          (* interior multiplicity is exactly q on (1, 50) *)
          let profile = Sweep.coverage_profile ~within:(1., 50.) intervals in
          List.for_all (fun (_, _, c) -> c = q) profile)


let prop_greedy_assignment_passes_proof_check =
  (* every completed greedy build is a valid standalone proof object *)
  QCheck2.Test.make ~count:8 ~name:"greedy assignments pass check_assignment"
    gen_line_instance (fun (k, f) ->
      let strat = Mray.make (P.line ~k ~f) in
      let turns = Orc.of_mray_group strat in
      let q = 2 * (f + 1) in
      let mu = (Mray.predicted_ratio strat -. 1.) /. 2. in
      match A.build A.Orc_setting ~mu ~demand:q ~turns ~up_to:60. () with
      | A.Stuck _ -> false
      | A.Complete ivs ->
          let doc =
            {
              CIO.a_setting = A.Orc_setting;
              a_k = k;
              a_demand = q;
              a_mu = mu;
              intervals = ivs;
            }
          in
          Result.is_ok (CIO.check_assignment doc))

let prop_refutation_monotone_in_lambda =
  (* if lambda is refuted by a gap, every smaller lambda is too *)
  QCheck2.Test.make ~count:8 ~name:"gap refutation is monotone in lambda"
    gen_line_instance (fun (k, f) ->
      let strat = Mray.make (P.line ~k ~f) in
      let turns = Orc.of_mray_group strat in
      let lam0 = Mray.predicted_ratio strat in
      let refuted lambda =
        match Cert.check_line ~turns ~f ~lambda ~n:200. () with
        | Cert.Refuted_gap _ | Cert.Refuted_potential _ -> true
        | Cert.Not_refuted _ | Cert.Inconclusive _ -> false
      in
      (* 2%% below refuted implies 5%% below refuted *)
      (not (refuted (0.98 *. lam0))) || refuted (0.95 *. lam0))

let prop_max_covered_monotone =
  QCheck2.Test.make ~count:20 ~name:"max_covered monotone in lambda"
    (QCheck2.Gen.(pair (float_range 1.3 3.) (float_range 4. 8.)))
    (fun (alpha, lambda) ->
      let t = Turning.geometric ~alpha () in
      let a = Sym.max_covered [| t |] ~demand:1 ~lambda ~n:1e4 in
      let b = Sym.max_covered [| t |] ~demand:1 ~lambda:(lambda +. 0.5) ~n:1e4 in
      b >= a -. 1e-9)


let test_frontier_multi_reduces_to_single () =
  let a = Frontier.line_single ~lambda:8. in
  let b = Frontier.multi ~lambda:8. ~k:1 ~demand:1 () in
  Alcotest.(check (float 1e-9)) "same horizon" a.Frontier.horizon b.Frontier.horizon;
  check_int "same steps" a.Frontier.steps b.Frontier.steps

let test_frontier_multi_more_robots_reach_further () =
  (* k=3, s=1 (the (3,1) line instance) below its bound 5.233: more
     robots cover further than one robot below ITS bound proportionally;
     directly: reach is monotone in k at a fixed lambda below all bounds *)
  let r1 = Frontier.multi ~lambda:4.8 ~k:2 ~demand:1 () in
  let r2 = Frontier.multi ~lambda:4.8 ~k:3 ~demand:1 () in
  check_bool "monotone in k" true
    (r2.Frontier.horizon >= r1.Frontier.horizon)

let test_frontier_multi_below_cap () =
  let lambda = 5.0 in
  let r = Frontier.multi ~lambda ~k:3 ~demand:1 () in
  let cap =
    Search_covering.Certificate.log_horizon_bound A.Line_symmetric ~k:3
      ~demand:1 ~lambda ()
  in
  check_bool "below theory cap" true (log r.Frontier.horizon < cap)

let test_frontier_multi_rejects_above_bound () =
  match Frontier.multi ~lambda:9.5 ~k:1 ~demand:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lambda above the bound accepted"

let test_frontier_multi_assignment_is_valid_proof_object () =
  (* the greedy-max turns, replayed as an assignment, pass the standalone
     proof-object check *)
  let lambda = 5.0 in
  let mu = (lambda -. 1.) /. 2. in
  let r = Frontier.multi ~lambda ~k:3 ~demand:1 () in
  (* rebuild intervals: lefts are the running frontier; with demand 1 the
     frontier is just the previous turn *)
  let _, intervals =
    List.fold_left
      (fun (a, acc) t ->
        (* attribute turns round-robin as the greedy would: recompute by
           min-load, mirroring the builder *)
        (t, (a, t) :: acc))
      (1., []) r.Frontier.turns
  in
  let loads = Array.make 3 0. in
  let ivs =
    List.map
      (fun (left, turn) ->
        (* the robot with the smallest load at that moment *)
        let best = ref 0 in
        for i = 1 to 2 do
          if loads.(i) < loads.(!best) then best := i
        done;
        loads.(!best) <- loads.(!best) +. turn;
        { A.robot = !best; left; turn })
      (List.rev intervals)
  in
  let doc =
    {
      CIO.a_setting = A.Line_symmetric;
      a_k = 3;
      a_demand = 1;
      a_mu = mu;
      intervals = ivs;
    }
  in
  match CIO.check_assignment doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "greedy-max object rejected: %s" e

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_optimal_strategy_covers_at_its_bound;
      prop_greedy_assignment_passes_proof_check;
      prop_refutation_monotone_in_lambda;
      prop_max_covered_monotone;
      prop_certificate_refutes_below;
      prop_assignment_covers_exactly;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "covering"
    [
      ( "symmetric",
        [
          tc "optimal covers at bound" `Quick test_sym_optimal_covers_at_bound;
          tc "fails below bound" `Quick test_sym_fails_below_bound;
          tc "doubling cow at nine" `Quick test_sym_doubling_cow_at_nine;
          tc "max_covered monotone" `Quick test_sym_max_covered_monotone_in_lambda;
          tc "intervals in window" `Quick test_sym_intervals_within_window;
        ] );
      ( "orc",
        [
          tc "q-fold at bound" `Quick test_orc_optimal_covers_qfold;
          tc "demand strictness" `Quick test_orc_demand_strictness;
          tc "of_mray geometric" `Quick test_orc_of_mray_geometric;
          tc "m-ray covering demand" `Quick test_orc_mray_covering_demand;
        ] );
      ( "assigned",
        [
          tc "build complete (ORC)" `Quick test_assigned_build_complete_orc;
          tc "build complete (line)" `Quick test_assigned_build_complete_line;
          tc "intervals start at frontier" `Quick
            test_assigned_intervals_start_at_frontier;
          tc "ORC load constraint" `Quick test_assigned_respects_load_constraint;
          tc "line turn constraint" `Quick test_assigned_line_constraint;
          tc "stuck when impossible" `Quick test_assigned_stuck_when_impossible;
          tc "loads accessor" `Quick test_assigned_loads_accessor;
        ] );
      ( "potential",
        [
          tc "delta matches lemma" `Quick test_potential_delta_matches_lemma;
          tc "step ratios at the bound" `Quick test_potential_step_ratios_at_bound;
          tc "growth below the bound" `Quick test_potential_growth_below_bound;
          tc "ceiling on valid covers" `Quick
            test_potential_ceiling_respected_on_valid_covers;
        ] );
      ( "certificate",
        [
          tc "gap refutation below" `Quick test_cert_gap_below_bound;
          tc "not refuted at bound" `Quick test_cert_not_refuted_at_bound;
          tc "finite cover consistent" `Quick
            test_cert_finite_cover_below_bound_consistent;
          tc "validation" `Quick test_cert_validation;
          tc "threshold bisection" `Quick test_cert_threshold_bisection;
          tc "log horizon bound" `Quick test_cert_log_horizon_bound;
          tc "horizon bound dominates" `Quick
            test_cert_horizon_bound_dominates_construction;
        ] );
      ( "certificate_io",
        [
          tc "roundtrip gap" `Quick test_cio_roundtrip_gap;
          tc "roundtrip not-refuted" `Quick test_cio_roundtrip_not_refuted;
          tc "recheck confirms" `Quick test_cio_recheck_confirms;
          tc "recheck detects tampering" `Quick test_cio_recheck_detects_tampering;
          tc "recheck wrong arity" `Quick test_cio_recheck_wrong_k;
          tc "rejects garbage" `Quick test_cio_parse_rejects_garbage;
          tc "assignment roundtrip" `Quick test_cio_assignment_roundtrip;
          tc "assignment checks" `Quick test_cio_assignment_checks;
          tc "assignment gap detected" `Quick test_cio_assignment_detects_gap;
          tc "assignment overload detected" `Quick
            test_cio_assignment_detects_overload;
        ] );
      ( "frontier",
        [
          tc "validation" `Quick test_frontier_validation;
          tc "coverage verified" `Quick test_frontier_coverage_verified;
          tc "greedy is tight" `Quick test_frontier_is_maximal;
          tc "monotone and divergent" `Quick test_frontier_monotone_and_divergent;
          tc "below theoretical cap" `Quick test_frontier_below_theoretical_cap;
          tc "discriminant" `Quick test_frontier_discriminant;
          tc "multi reduces to single" `Quick test_frontier_multi_reduces_to_single;
          tc "multi monotone in k" `Quick test_frontier_multi_more_robots_reach_further;
          tc "multi below cap" `Quick test_frontier_multi_below_cap;
          tc "multi rejects above bound" `Quick test_frontier_multi_rejects_above_bound;
          tc "multi is a proof object" `Quick
            test_frontier_multi_assignment_is_valid_proof_object;
        ] );
      ( "fractional",
        [
          tc "uniform fleet covers" `Quick test_frac_uniform_fleet_covers;
          tc "gap below" `Quick test_frac_gap_below;
          tc "split preserves coverage" `Quick test_frac_split_preserves_coverage;
          tc "upper approximations" `Quick test_frac_upper_approximations_converge;
          tc "lower bound eps" `Quick test_frac_lower_bound_eps_converges;
          tc "C(eta) anchors" `Quick test_frac_c_eta_anchors;
        ] );
      ("properties", properties);
    ]
