(* Tests for the deterministic whole-system simulator: the discrete-event
   scheduler (virtual clock, seeded interleavings, crash capture), the
   fake network (fragmented delivery, clean EOF, refused connects, fd
   accounting), and the harness that boots the real daemon plus simulated
   clients inside one seed — whose load-bearing properties are (a) a run
   is a pure function of its scenario (byte-identical traces across
   reruns and across --jobs), (b) the invariant oracles hold across many
   seeds with network faults enabled, and (c) a deliberately injected
   server bug is found by seed search, shrinks, and replays from its
   corpus entry. *)

module Sim = Search_dst.Sim
module Net = Search_dst.Net
module Harness = Search_dst.Harness
module Runtime = Search_serve.Runtime
module Prng = Search_numerics.Prng
module Json = Search_numerics.Json
module E = Search_numerics.Search_error

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

(* ------------------------------------------------------------------ *)
(* the scheduler *)

let test_sim_clock_and_timer_order () =
  let sim = Sim.create ~prng:(Prng.make ~seed:1) in
  let log = ref [] in
  Sim.spawn sim ~name:"late" (fun () ->
      Sim.sleep sim 0.5;
      log := "late" :: !log);
  Sim.spawn sim ~name:"early" (fun () ->
      Sim.sleep sim 0.1;
      log := "early" :: !log);
  check_bool "clock starts at zero" true (Float.equal (Sim.now sim) 0.);
  (match Sim.run sim ~deadline:10. with
  | `Quiescent -> ()
  | `Deadline -> Alcotest.fail "expected quiescence");
  check_bool "timers fired in time order" true
    (match !log with
    | [ "late"; "early" ] -> true
    | _ -> false);
  check_bool "clock advanced to the last timer" true
    (Float.equal (Sim.now sim) 0.5);
  check_int "no fiber still live" 0 (Sim.live sim)

let interleaving ~seed =
  let sim = Sim.create ~prng:(Prng.make ~seed) in
  let log = Buffer.create 64 in
  for i = 0 to 4 do
    Sim.spawn sim ~name:(string_of_int i) (fun () ->
        for step = 0 to 3 do
          Buffer.add_string log (Printf.sprintf "%d.%d;" i step);
          Sim.yield sim
        done)
  done;
  (match Sim.run sim ~deadline:1. with
  | `Quiescent -> ()
  | `Deadline -> Alcotest.fail "expected quiescence");
  Buffer.contents log

let test_sim_seeded_interleaving () =
  (* the schedule is a pure function of the seed... *)
  check_string "same seed, same interleaving" (interleaving ~seed:42)
    (interleaving ~seed:42);
  (* ... and the seed genuinely mixes runnables (5 fibers x 4 steps:
     some seed among these must deviate from any fixed order) *)
  let base = interleaving ~seed:0 in
  check_bool "some seed interleaves differently" true
    (List.exists
       (fun seed -> not (String.equal base (interleaving ~seed)))
       [ 1; 2; 3; 4; 5 ])

let test_sim_crash_capture_and_deadline () =
  let sim = Sim.create ~prng:(Prng.make ~seed:7) in
  Sim.spawn sim ~name:"bomb" (fun () -> failwith "boom");
  Sim.spawn sim ~name:"sleeper" (fun () -> Sim.sleep sim 100.);
  (match Sim.run sim ~deadline:1. with
  | `Deadline -> ()
  | `Quiescent -> Alcotest.fail "expected a deadline overrun");
  (match Sim.crashes sim with
  | [ ("bomb", Failure _) ] -> ()
  | _ -> Alcotest.fail "crash not captured under its fiber name");
  check_int "the sleeper is still live" 1 (Sim.live sim)

(* ------------------------------------------------------------------ *)
(* the fake network *)

let pattern n = String.init n (fun i -> Char.chr (i * 31 mod 256))

let test_net_fragmented_roundtrip () =
  let sim = Sim.create ~prng:(Prng.make ~seed:11) in
  let net = Net.create ~sim ~prng:(Prng.make ~seed:12) ~faults:false in
  let ops = Net.ops net in
  let payload = pattern 5000 in
  let got = Buffer.create 5000 in
  Sim.spawn sim ~name:"server" (fun () ->
      let lfd = ops.Runtime.listen ~path:"/sim/echo.sock" in
      let rec accept_loop () =
        match ops.Runtime.accept lfd with
        | `Conn fd -> fd
        | `Again ->
            ignore
              (ops.Runtime.select ~read:[ lfd ] ~write:[] ~timeout:1.0);
            accept_loop ()
        | `Err e -> Alcotest.fail ("accept: " ^ e)
      in
      let fd = accept_loop () in
      let buf = Bytes.create 256 in
      let rec drain () =
        if Buffer.length got < String.length payload then
          match ops.Runtime.read_blocking fd buf ~off:0 ~len:256 with
          | `Data n ->
              Buffer.add_subbytes got buf 0 n;
              drain ()
          | `Eof -> ()
          | `Err e -> Alcotest.fail ("read: " ^ e)
      in
      drain ();
      ops.Runtime.close fd;
      ops.Runtime.close lfd;
      ops.Runtime.unlink "/sim/echo.sock");
  Sim.spawn sim ~name:"client" (fun () ->
      let fd = ops.Runtime.connect ~path:"/sim/echo.sock" in
      let pos = ref 0 in
      while !pos < String.length payload do
        match
          ops.Runtime.write_blocking fd payload ~off:!pos
            ~len:(String.length payload - !pos)
        with
        | `Wrote n -> pos := !pos + n
        | `Err e -> Alcotest.fail ("write: " ^ e)
      done;
      (* wait for the server's EOF so close ordering is quiescent *)
      let buf = Bytes.create 1 in
      (match ops.Runtime.read_blocking fd buf ~off:0 ~len:1 with
      | `Eof | `Err _ -> ()
      | `Data _ -> Alcotest.fail "unexpected data from echo server");
      ops.Runtime.close fd);
  (match Sim.run sim ~deadline:60. with
  | `Quiescent -> ()
  | `Deadline -> Alcotest.fail "net roundtrip did not quiesce");
  check_string "stream delivered intact" payload (Buffer.contents got);
  check_bool "delivery was fragmented" true ((Net.counters net).Net.chunks > 1);
  check_bool "no fd leaked" true (match Net.open_fds net with [] -> true | _ -> false);
  check_bool "socket unbound" true
    (not (Net.socket_bound net "/sim/echo.sock"))

let test_net_connect_refused () =
  let sim = Sim.create ~prng:(Prng.make ~seed:5) in
  let net = Net.create ~sim ~prng:(Prng.make ~seed:6) ~faults:false in
  let ops = Net.ops net in
  let refused = ref false in
  Sim.spawn sim ~name:"client" (fun () ->
      match ops.Runtime.connect ~path:"/sim/nobody.sock" with
      | _ -> ()
      | exception E.Error (E.Io_failure _) -> refused := true);
  (match Sim.run sim ~deadline:1. with
  | `Quiescent -> ()
  | `Deadline -> Alcotest.fail "expected quiescence");
  check_bool "connect to unbound path is refused" true !refused

(* ------------------------------------------------------------------ *)
(* whole-system runs *)

let scenario_fingerprint sc =
  Json.to_string (Harness.scenario_to_json sc)

let test_run_clean_and_bit_deterministic () =
  let sc =
    Harness.scenario ~seed:3 ~clients:4 ~requests:3 ~light:true ()
  in
  let o1 = Harness.run sc in
  let o2 = Harness.run sc in
  check_bool "no violations" true (match o1.Harness.violations with [] -> true | _ -> false);
  check_string "trace byte-identical across reruns" o1.Harness.trace
    o2.Harness.trace;
  check_string "digest stable" o1.Harness.digest o2.Harness.digest;
  (* the worker-pool size is invisible to the simulation *)
  let o4 = Harness.run { sc with Harness.jobs = 2 } in
  check_string "trace byte-identical at jobs 1 vs 2" o1.Harness.trace
    o4.Harness.trace;
  check_int "every request served" (4 * 3) o1.Harness.served

let test_run_full_mix_clean () =
  let sc = Harness.scenario ~seed:1 ~clients:3 ~requests:2 () in
  let o = Harness.run sc in
  (match o.Harness.violations with
  | [] -> ()
  | v :: _ -> Alcotest.fail ("unexpected violation: " ^ v));
  check_int "every request served" (3 * 2) o.Harness.served

let test_faults_oracles_hold_across_seeds () =
  for seed = 0 to 9 do
    let sc =
      Harness.scenario ~seed ~clients:3 ~requests:3 ~faults:true ~light:true
        ()
    in
    let o = Harness.run sc in
    match o.Harness.violations with
    | [] -> ()
    | v :: _ ->
        Alcotest.fail (Printf.sprintf "seed %d violated: %s" seed v)
  done

let test_fault_run_deterministic () =
  let sc =
    Harness.scenario ~seed:7 ~clients:4 ~requests:3 ~faults:true ~light:true
      ()
  in
  let o1 = Harness.run sc in
  let o2 = Harness.run sc in
  check_string "faulty run still byte-deterministic" o1.Harness.trace
    o2.Harness.trace

let test_injected_bug_found_shrunk_replayed () =
  let dir = temp_dir "dst-corpus" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sc =
    Harness.scenario ~seed:0 ~clients:8 ~requests:6 ~queue_cap:2
      ~inject:"drop-shed-response" ()
  in
  match Harness.search sc ~seeds:200 with
  | `Clean _ -> Alcotest.fail "injected bug not found within 200 seeds"
  | `Found (o, _) ->
      check_bool "outcome violates" true (Harness.failing o);
      let shrunk = Harness.shrink o in
      check_bool "shrunk outcome still violates" true (Harness.failing shrunk);
      let ssc = shrunk.Harness.scenario in
      check_bool "shrinking never grows the scenario" true
        (ssc.Harness.clients * ssc.Harness.requests
        <= o.Harness.scenario.Harness.clients
           * o.Harness.scenario.Harness.requests);
      let path = Harness.corpus_write ~dir shrunk in
      (match Harness.replay_file path with
      | Ok replayed ->
          check_bool "replay reproduces the violation" true
            (Harness.failing replayed)
      | Error msg -> Alcotest.fail ("replay failed: " ^ msg))

let test_scenario_json_roundtrip () =
  let sc =
    Harness.scenario ~seed:9 ~clients:5 ~requests:4 ~faults:true ~jobs:2
      ~queue_cap:3 ~light:true ~inject:"drop-shed-response" ()
  in
  match Harness.scenario_of_json (Harness.scenario_to_json sc) with
  | Ok sc' ->
      check_string "scenario roundtrips through JSON"
        (scenario_fingerprint sc) (scenario_fingerprint sc')
  | Error msg -> Alcotest.fail ("scenario did not parse back: " ^ msg)

(* ------------------------------------------------------------------ *)
(* the fuzz-catalogue extension *)

let test_invariant_registration_and_clean_case () =
  Harness.register_invariant ();
  let names = Search_check.Invariant.names () in
  check_bool "dst.whole_system registered" true
    (List.exists (String.equal "dst.whole_system") names);
  (* registration is idempotent by name *)
  Harness.register_invariant ();
  check_int "no duplicate after re-registration"
    (List.length names)
    (List.length (Search_check.Invariant.names ()));
  let case =
    {
      Search_check.Case.id = 0;
      m = 2;
      k = 3;
      f = 1;
      horizon = 100.;
      alpha_scale = 1.0;
      lambda_frac = 0.5;
      targets = [ (0, 10.) ];
      turn_seed = 12345;
    }
  in
  check_bool "whole-system invariant holds on a healthy case" true
    (match Harness.invariant_case case with [] -> true | _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "dst"
    [
      ( "sim",
        [
          tc "virtual clock and timer order" `Quick
            test_sim_clock_and_timer_order;
          tc "interleaving is a pure function of the seed" `Quick
            test_sim_seeded_interleaving;
          tc "crashes are captured; stuck fibers hit the deadline" `Quick
            test_sim_crash_capture_and_deadline;
        ] );
      ( "net",
        [
          tc "fragmented stream arrives intact, fds accounted" `Quick
            test_net_fragmented_roundtrip;
          tc "connect to unbound path is refused" `Quick
            test_net_connect_refused;
        ] );
      ( "harness",
        [
          tc "clean run, trace bit-identical across reruns and jobs" `Quick
            test_run_clean_and_bit_deterministic;
          tc "full workload mix is clean" `Quick test_run_full_mix_clean;
          tc "oracles hold across 10 faulty seeds" `Quick
            test_faults_oracles_hold_across_seeds;
          tc "faulty runs are byte-deterministic" `Quick
            test_fault_run_deterministic;
          tc "injected bug: found, shrunk, replayed" `Quick
            test_injected_bug_found_shrunk_replayed;
          tc "scenario JSON roundtrip" `Quick test_scenario_json_roundtrip;
        ] );
      ( "invariant",
        [
          tc "registers dst.whole_system; healthy case is clean" `Quick
            test_invariant_registration_and_clean_case;
        ] );
    ]
