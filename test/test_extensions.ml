(* Tests for the related-work extensions: the PRNG substrate, CSV
   emission, the randomized cow path (Kao-Reif-Tate), the distance/work
   measure (Kao-Ma-Sipser-Yin), turn costs (Demaine-Fekete-Gal), the
   stochastic (Bellman-Beck) evaluation, and the Case-2 induction
   machinery of Section 3.1. *)

module Prng = Search_numerics.Prng
module Csv = Search_numerics.Csv_out
module R = Search_strategy.Randomized
module WS = Search_sim.Work_schedule
module TC = Search_sim.Turn_cost
module St = Search_sim.Stochastic
module Ind = Search_covering.Induction
module W = Search_sim.World
module Tr = Search_sim.Trajectory
module F = Search_bounds.Formulas
module P = Search_bounds.Params
module A = Search_covering.Assigned
module Sweep = Search_numerics.Sweep

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a1, _ = Prng.next_int64 (Prng.make ~seed:7) in
  let a2, _ = Prng.next_int64 (Prng.make ~seed:7) in
  check_bool "same seed same stream" true (Int64.equal a1 a2);
  let b1, _ = Prng.next_int64 (Prng.make ~seed:8) in
  check_bool "different seed differs" false (Int64.equal a1 b1)

let test_prng_float_range () =
  let rec loop g i =
    if i < 1000 then begin
      let u, g = Prng.float g in
      check_bool "in [0,1)" true (0. <= u && u < 1.);
      loop g (i + 1)
    end
  in
  loop (Prng.make ~seed:1) 0

let test_prng_uniformity () =
  (* crude mean/variance check over 10k draws *)
  let n = 10_000 in
  let rec loop g i acc acc2 =
    if i = n then (acc /. float_of_int n, acc2 /. float_of_int n)
    else
      let u, g = Prng.float g in
      loop g (i + 1) (acc +. u) (acc2 +. (u *. u))
  in
  let mean, m2 = loop (Prng.make ~seed:99) 0 0. 0. in
  check_bool "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02);
  check_bool "second moment near 1/3" true (Float.abs (m2 -. (1. /. 3.)) < 0.02)

let test_prng_int_bound () =
  let rec loop g i seen =
    if i = 500 then seen
    else
      let v, g = Prng.int ~bound:6 g in
      check_bool "in range" true (0 <= v && v < 6);
      loop g (i + 1) (if List.mem v seen then seen else v :: seen)
  in
  let seen = loop (Prng.make ~seed:5) 0 [] in
  check_int "all faces seen" 6 (List.length seen)

let test_prng_split_independent () =
  let a, b = Prng.split (Prng.make ~seed:3) in
  let va, _ = Prng.next_int64 a and vb, _ = Prng.next_int64 b in
  check_bool "split streams differ" false (Int64.equal va vb)

let test_prng_int_distribution () =
  (* rejection sampling is exactly uniform; with 20k draws over 10
     buckets each count concentrates near 2000 (sd ~ 42) *)
  let n = 20_000 and bound = 10 in
  let counts = Array.make bound 0 in
  let rec loop g i =
    if i < n then begin
      let v, g = Prng.int ~bound g in
      counts.(v) <- counts.(v) + 1;
      loop g (i + 1)
    end
  in
  loop (Prng.make ~seed:20180723) 0;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d count %d within 2000 +- 200" i c)
        true
        (abs (c - 2000) < 200))
    counts

let test_prng_int_large_bound_reachable () =
  (* the former float-scaling sampler could only produce multiples of
     512 above 2^61 (53-bit mantissa): whole residue classes were
     unreachable.  Rejection sampling reaches them. *)
  let bound = max_int (* 2^62 - 1 *) in
  let high_odd = ref 0 and high = ref 0 in
  let rec loop g i =
    if i < 400 then begin
      let v, g = Prng.int ~bound g in
      check_bool "in range" true (0 <= v && v < bound);
      if v >= 1 lsl 61 then begin
        incr high;
        if v mod 512 <> 0 then incr high_odd
      end;
      loop g (i + 1)
    end
  in
  loop (Prng.make ~seed:11) 0;
  check_bool "about half the draws land in the top half" true (!high > 100);
  check_bool "top-half draws hit residues not divisible by 512" true
    (!high_odd > 0)

let test_prng_split_stream_independence () =
  (* parent pre-split stream, left child and right child: no output of
     any stream may appear in another (the former split seeded the left
     child with a raw parent output, putting its whole stream one gamma
     step from values the parent hands out elsewhere) *)
  let draws g n =
    let rec loop g i acc =
      if i = n then acc
      else
        let v, g = Prng.next_int64 g in
        loop g (i + 1) (v :: acc)
    in
    loop g 0 []
  in
  let root = Prng.make ~seed:42 in
  let l, r = Prng.split root in
  let all = draws root 512 @ draws l 512 @ draws r 512 in
  check_int "all 1536 outputs distinct" 1536
    (List.length (List.sort_uniq Int64.compare all));
  (* and the child streams look uniform: mean of 512 floats near 1/2 *)
  let mean g =
    let rec loop g i acc =
      if i = 512 then acc /. 512.
      else
        let u, g = Prng.float g in
        loop g (i + 1) (acc +. u)
    in
    loop g 0 0.
  in
  check_bool "left child mean near 1/2" true (Float.abs (mean l -. 0.5) < 0.05);
  check_bool "right child mean near 1/2" true (Float.abs (mean r -. 0.5) < 0.05)

(* ------------------------------------------------------------------ *)
(* Csv_out *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b")

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "fsearch" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ]
    ~rows:[ [ "1"; "2" ]; [ "3"; "4,5" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "content" [ "x,y"; "1,2"; "3,\"4,5\"" ] lines

let test_csv_arity () =
  let path = Filename.temp_file "fsearch" ".csv" in
  (match Csv.write ~path ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "arity mismatch accepted");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Randomized (Kao-Reif-Tate) *)

let test_krt_optimal_beta () =
  let b = R.optimal_beta () in
  (* defining equation beta ln beta = beta + 1 *)
  Alcotest.(check (float 1e-9)) "defining equation" (b +. 1.) (b *. log b);
  check_bool "near 3.59112" true (Float.abs (b -. 3.59112) < 1e-4);
  Alcotest.(check (float 1e-9)) "ratio = 1 + beta" (1. +. b) (R.optimal_ratio ())

let test_krt_formula_at_optimum () =
  let b = R.optimal_beta () in
  Alcotest.(check (float 1e-9)) "r(beta*) = 1 + beta*" (1. +. b)
    (R.ratio_formula ~beta:b);
  (* any other beta is worse *)
  List.iter
    (fun beta ->
      check_bool "suboptimal" true (R.ratio_formula ~beta > 1. +. b +. 1e-6))
    [ 2.0; 3.0; 4.5; 6.0 ]

let test_krt_beats_deterministic () =
  check_bool "4.59 < 9" true (R.optimal_ratio () < 9.)

let test_krt_detection_time_concrete () =
  (* u = 0, positive first, beta = 2: turns 2, 4, 8 at +2, -4, +8 *)
  checkf "target +1.5 outbound" 1.5
    (R.detection_time ~beta:2. ~u:0. ~positive_first:true ~x:1.5);
  (* target -3: reached on leg 2 after 2 + 2 + 3 *)
  checkf "target -3" 7.
    (R.detection_time ~beta:2. ~u:0. ~positive_first:true ~x:(-3.))

let test_krt_quadrature_matches_formula () =
  let b = R.optimal_beta () in
  (* exact expected ratio at finite x carries a -2 beta/(x ln beta)
     correction; check both at moderate x *)
  let x = 500. in
  let expected = R.ratio_formula ~beta:b -. (2. *. b /. (x *. log b)) in
  let measured = R.expected_ratio_exact ~beta:b ~x ~grid:2000 in
  check_bool "quadrature within 2e-3" true (Float.abs (measured -. expected) < 2e-3)

let test_krt_monte_carlo_agrees () =
  let b = R.optimal_beta () in
  let mc =
    R.expected_ratio_at ~beta:b ~x:500. ~samples:20_000
      ~prng:(Prng.make ~seed:2024)
  in
  let exact = R.expected_ratio_exact ~beta:b ~x:500. ~grid:2000 in
  check_bool "MC within 0.05 of quadrature" true (Float.abs (mc -. exact) < 0.05)

(* ------------------------------------------------------------------ *)
(* Work_schedule (Kao-Ma-Sipser-Yin distance measure) *)

let test_ws_single_robot_anchor () =
  (* with k = 1 work = time: the classic single-robot values *)
  List.iter
    (fun m ->
      let sched = WS.kmsy ~alpha:(F.alpha_star ~q:m ~k:1) ~m ~k:1 () in
      let out = WS.worst_ratio sched ~n:200. () in
      check_bool
        (Printf.sprintf "m=%d anchor" m)
        true
        (Float.abs (out.WS.ratio -. F.single_robot_mray ~m) < 0.05))
    [ 2; 3; 4 ]

let test_ws_work_to_visit_concrete () =
  (* two robots, hand-written moves *)
  let w = W.rays 2 in
  let moves = [| { WS.robot = 0; target = W.point w ~ray:0 ~dist:2. };
                 { WS.robot = 1; target = W.point w ~ray:1 ~dist:3. };
                 { WS.robot = 0; target = W.point w ~ray:0 ~dist:5. } |] in
  let sched = WS.make ~world:w ~robots:2 (fun i -> moves.((i - 1) mod 3)) in
  (* target at ray 1, dist 2: move 1 costs 2, move 2 passes it after 2 *)
  (match WS.work_to_visit sched ~target:(W.point w ~ray:1 ~dist:2.) ~work_budget:100. with
  | Some wk -> checkf "work 2 + 2" 4. wk
  | None -> Alcotest.fail "expected visit");
  (* target at ray 0, dist 4: moves 1 (2) + 2 (3) + partial 2 = 7 *)
  match WS.work_to_visit sched ~target:(W.point w ~ray:0 ~dist:4.) ~work_budget:100. with
  | Some wk -> checkf "work 2 + 3 + 2" 7. wk
  | None -> Alcotest.fail "expected visit"

let test_ws_budget_exhaustion () =
  let w = W.rays 2 in
  let sched =
    WS.make ~world:w ~robots:1 (fun i ->
        { WS.robot = 0; target = W.point w ~ray:0 ~dist:(float_of_int i) })
  in
  check_bool "budget respected" true
    (WS.work_to_visit sched ~target:(W.point w ~ray:1 ~dist:5.) ~work_budget:3. = None)

let test_ws_more_robots_help () =
  (* distance ratio improves with k (fewer return trips) at a common
     moderately-good base *)
  let ratio k =
    let sched = WS.kmsy ~alpha:2. ~m:4 ~k () in
    (WS.worst_ratio sched ~n:200. ()).WS.ratio
  in
  let r1 = ratio 1 and r2 = ratio 2 and r3 = ratio 3 in
  check_bool "k=2 beats k=1" true (r2 < r1);
  check_bool "k=3 beats k=2" true (r3 < r2)

let test_ws_sequential_beats_parallel_charged () =
  (* the Section 3 remark: in the distance measure, the time-optimal
     parallel strategy is wasteful *)
  let m = 4 and k = 3 in
  let best_seq = ref infinity in
  for i = 0 to 15 do
    let alpha = 1.3 +. (0.2 *. float_of_int i) in
    let sched = WS.kmsy ~alpha ~m ~k () in
    let r = (WS.worst_ratio sched ~n:200. ()).WS.ratio in
    if r < !best_seq then best_seq := r
  done;
  let p = P.make ~m ~k ~f:0 in
  let trs = Search_strategy.Group.trajectories (Search_strategy.Group.optimal p) in
  let parallel = WS.parallel_charged trs ~f:0 ~n:200. in
  check_bool "sequential schedule wins on distance" true (!best_seq < parallel)

let test_ws_validation () =
  let w = W.rays 2 in
  (match WS.make ~world:w ~robots:0 (fun _ -> assert false) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 robots accepted");
  let sched =
    WS.make ~world:w ~robots:1 (fun _ ->
        { WS.robot = 3; target = W.point w ~ray:0 ~dist:1. })
  in
  match WS.move sched 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "robot out of range accepted"

(* ------------------------------------------------------------------ *)
(* Turn_cost (Demaine-Fekete-Gal) *)

let cow () = Tr.compile (Search_strategy.Cyclic.doubling_cow ())

(* an explicit doubling zigzag with turns 1, 2, 4 (no warm-up turns, so
   reversal times are 1, 4, 10) *)
let plain_zigzag () =
  Tr.compile
    (Search_strategy.Line_zigzag.itinerary
       (Search_strategy.Turning.geometric ~scale:0.5 ~alpha:2. ()))

let test_tc_reversal_count () =
  let tr = plain_zigzag () in
  check_int "no reversal before t=1" 0 (TC.reversals_before tr ~time:1.);
  check_int "one strictly after the tip" 1 (TC.reversals_before tr ~time:1.5);
  check_int "two by t=5" 2 (TC.reversals_before tr ~time:5.);
  check_int "three by t=12" 3 (TC.reversals_before tr ~time:12.)

let test_tc_zero_cost_matches_engine () =
  let tr = [| cow () |] in
  let target = W.point W.line ~ray:1 ~dist:1.5 in
  let plain = Search_sim.Engine.detection_time_worst tr ~f:0 ~target ~horizon:100. in
  let charged = TC.detection_cost tr ~f:0 ~turn_cost:0. ~target ~horizon:100. in
  check_bool "c=0 is the plain model" true (plain = charged)

let test_tc_cost_monotone_in_c () =
  let tr = [| cow () |] in
  let r c = TC.worst_ratio tr ~f:0 ~turn_cost:c ~n:100. () in
  let r0 = r 0. and r1 = r 1. and r5 = r 5. in
  check_bool "increasing in c" true (r0 < r1 && r1 < r5);
  check_bool "c=0 is the classic 9" true (Float.abs (r0 -. 9.) < 0.01)

let test_tc_bases_converge_at_high_c () =
  (* in the sup-over-[1,n] metric the worst case at large c sits just
     past a turning point near distance 1 and charges one reversal for
     every base, so the doubling advantage shrinks to nothing: at c = 0
     doubling strictly wins, by c = 10 base 3 has caught up *)
  let zig alpha =
    [| Tr.compile (Search_strategy.Line_zigzag.itinerary
                     (Search_strategy.Turning.geometric ~alpha ())) |]
  in
  let at c alpha = TC.worst_ratio (zig alpha) ~f:0 ~turn_cost:c ~n:100. () in
  check_bool "at c=0 doubling wins" true (at 0. 2. < at 0. 3.);
  let gap0 = at 0. 3. -. at 0. 2. in
  let gap10 = at 10. 3. -. at 10. 2. in
  check_bool "gap shrinks" true (gap10 < gap0);
  check_bool "caught up at c=10" true (gap10 < 0.01)

let test_tc_origin_charging () =
  let tr = cow () in
  (* with origin charging, ray changes through 0 also count *)
  let without = TC.reversals_before tr ~time:12. in
  let with_ = TC.reversals_before ~charge_origin:true tr ~time:12. in
  check_bool "origin charges add" true (with_ > without)

(* ------------------------------------------------------------------ *)
(* Stochastic (Bellman-Beck) *)

let test_st_distribution_validation () =
  (match St.make [] with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Invalid_input _) ->
      ()
  | _ -> Alcotest.fail "empty support accepted");
  (match St.make [ (W.point W.line ~ray:0 ~dist:2., 0.4) ] with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Invalid_input _) ->
      ()
  | _ -> Alcotest.fail "non-normalised accepted");
  let d = St.uniform_line ~cells:10 ~lo:1. ~hi:10. in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. d.St.support in
  checkf "sums to one" 1. total

let test_st_expected_distance () =
  let d = St.uniform_line ~cells:100 ~lo:1. ~hi:11. in
  (* mean of uniform on [1, 11] is 6 *)
  check_bool "E|d| near 6" true (Float.abs (St.expected_distance d -. 6.) < 0.01)

let test_st_point_mass_matches_engine () =
  let tr = [| cow () |] in
  let p = W.point W.line ~ray:0 ~dist:7.3 in
  let d = St.point_mass p in
  let e = St.expected_detection_time tr ~f:0 d ~horizon:1e3 in
  match Search_sim.Engine.detection_time_worst tr ~f:0 ~target:p ~horizon:1e3 with
  | Some t -> checkf "point mass = detection time" t e
  | None -> Alcotest.fail "expected detection"

let test_st_beck_quotient_below_worst_case () =
  (* expectation over a spread distribution beats the worst case *)
  let tr = [| cow () |] in
  let d = St.uniform_line ~cells:60 ~lo:1. ~hi:100. in
  let q = St.beck_quotient tr ~f:0 d ~horizon:1e4 in
  check_bool "below 9" true (q < 9.);
  check_bool "above 1" true (q > 1.)

let test_st_sided_sweep_beats_doubling_on_known_dist () =
  let tr = [| cow () |] in
  let d = St.uniform_line ~cells:60 ~lo:1. ~hi:100. in
  let doubling_q = St.beck_quotient tr ~f:0 d ~horizon:1e4 in
  let sided = St.best_sided_sweep d in
  check_bool "knowing the distribution helps" true (sided < doubling_q)

let test_st_undetectable_is_infinite () =
  let tr = [| cow () |] in
  let d = St.point_mass (W.point W.line ~ray:0 ~dist:5.) in
  check_bool "tiny horizon -> infinity" true
    (Float.equal (St.expected_detection_time tr ~f:0 d ~horizon:2.) infinity)

(* ------------------------------------------------------------------ *)
(* Induction (Section 3.1, Case 2) *)

let assignment31 () =
  let p = P.line ~k:3 ~f:1 in
  let lam0 = F.of_params p in
  let mu = (lam0 -. 1.) /. 2. in
  let turns = Search_covering.Orc.of_mray_group (Search_strategy.Mray_exponential.make p) in
  match A.build A.Orc_setting ~mu ~demand:4 ~turns ~up_to:300. () with
  | A.Complete ivs -> (ivs, mu, turns)
  | A.Stuck _ -> Alcotest.fail "assignment stuck"

let test_ind_exponential_is_case1 () =
  let ivs, mu, _ = assignment31 () in
  let c_obs = Ind.observed_c ivs in
  check_bool "bounded jumps" true (c_obs < 20.);
  match Ind.classify ivs ~k:3 ~demand:4 ~mu ~c:(c_obs +. 1.) with
  | Ind.Case1 { c } -> check_bool "case 1 with observed c" true (c <= c_obs +. 1e-9)
  | Ind.Case2 _ -> Alcotest.fail "expected Case 1"

let test_ind_detects_jumps () =
  let ivs =
    [
      { A.robot = 0; left = 1.; turn = 2. };
      { A.robot = 1; left = 1.; turn = 3. };
      { A.robot = 0; left = 2.; turn = 4. };
      { A.robot = 0; left = 200.; turn = 400. };
    ]
  in
  (match Ind.jumps ivs ~c:50. with
  | [ j ] ->
      check_int "jumping robot" 0 j.Ind.robot;
      checkf "from" 2. j.Ind.from_left;
      checkf "to" 200. j.Ind.to_left
  | l -> Alcotest.failf "expected one jump, got %d" (List.length l));
  check_bool "observed c" true (Float.equal (Ind.observed_c ivs) 100.)

let test_ind_case2_reduction_shape () =
  let ivs =
    [
      { A.robot = 0; left = 1.; turn = 2. };
      { A.robot = 1; left = 1.; turn = 3. };
      { A.robot = 0; left = 2.; turn = 4. };
      { A.robot = 0; left = 200.; turn = 400. };
    ]
  in
  match Ind.classify ivs ~k:3 ~demand:4 ~mu:2. ~c:50. with
  | Ind.Case2 { window = lo, hi; reduced_k; reduced_demand; rescale; _ } ->
      checkf "window lo = mu t'" 4. lo;
      checkf "window hi = c t'" 100. hi;
      check_int "k - 1" 2 reduced_k;
      check_int "q - 1" 3 reduced_demand;
      checkf "rescale to 1" 4. rescale
  | Ind.Case1 _ -> Alcotest.fail "expected Case 2"

let test_ind_verify_reduction_on_real_strategy () =
  (* force a small c so some consecutive pair counts as a jump, then the
     other robots must (q-1)-fold cover the jump window — which they do,
     since the full strategy q-fold covers everything *)
  let ivs, mu, turns = assignment31 () in
  let c_obs = Ind.observed_c ivs in
  match Ind.jumps ivs ~c:(c_obs *. 0.99) with
  | [] -> Alcotest.fail "expected at least the maximal jump"
  | jump :: _ -> (
      match Ind.verify_reduction ~turns ~jump ~mu ~demand:4 with
      | Sweep.Covered -> ()
      | Sweep.Gap { at; _ } -> Alcotest.failf "reduced coverage gap at %g" at)

let test_ind_epsilon' () =
  check_bool "positive induction gap" true (Ind.epsilon' ~q:6 ~k:4 > 0.)

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_krt_expected_between_1_and_9 =
  QCheck2.Test.make ~count:40 ~name:"randomized expected ratio in (1, 9)"
    QCheck2.Gen.(pair (float_range 2. 6.) (float_range 2. 200.))
    (fun (beta, x) ->
      let r = R.expected_ratio_exact ~beta ~x ~grid:200 in
      1. < r && r < 12.)

let prop_ws_work_additive =
  (* total work after i moves equals the sum of star-metric distances *)
  QCheck2.Test.make ~count:50 ~name:"work accumulates star distances"
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_range 0 1) (float_range 0.5 20.)))
    (fun specs ->
      let w = W.rays 2 in
      let arr = Array.of_list specs in
      let n = Array.length arr in
      let sched =
        WS.make ~world:w ~robots:1 (fun i ->
            let ray, dist = arr.((i - 1) mod n) in
            { WS.robot = 0; target = W.point w ~ray ~dist })
      in
      (* compute expected work for the full first cycle by folding *)
      let expected, _ =
        Array.fold_left
          (fun (acc, pos) (ray, dist) ->
            let p = W.point w ~ray ~dist in
            (acc +. W.travel_distance pos p, p))
          (0., W.origin) arr
      in
      (* an unreachable target forces the walk through all n moves *)
      match
        WS.work_to_visit sched
          ~target:(W.point w ~ray:0 ~dist:1e9)
          ~work_budget:expected
      with
      | None -> true (* consumed exactly the budget without finding it *)
      | Some _ -> false)

let prop_tc_ratio_ge_plain =
  QCheck2.Test.make ~count:30 ~name:"turn cost never decreases the ratio"
    QCheck2.Gen.(pair (float_range 1.5 3.5) (float_range 0. 4.))
    (fun (alpha, c) ->
      let tr =
        [| Tr.compile (Search_strategy.Line_zigzag.itinerary
                         (Search_strategy.Turning.geometric ~alpha ())) |]
      in
      let plain = TC.worst_ratio tr ~f:0 ~turn_cost:0. ~n:50. () in
      let charged = TC.worst_ratio tr ~f:0 ~turn_cost:c ~n:50. () in
      charged >= plain -. 1e-9)

let prop_st_quotient_bounded_by_worst_case =
  (* the Beck quotient of any distribution never exceeds the worst-case
     competitive ratio over its support range *)
  QCheck2.Test.make ~count:20 ~name:"E T / E d <= sup ratio"
    QCheck2.Gen.(pair (float_range 2. 50.) (int_range 3 30))
    (fun (hi, cells) ->
      let tr = [| cow () |] in
      let d = St.uniform_line ~cells ~lo:1. ~hi in
      let q = St.beck_quotient tr ~f:0 d ~horizon:1e4 in
      q <= 9.0 +. 1e-6)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_krt_expected_between_1_and_9;
      prop_ws_work_additive;
      prop_tc_ratio_ge_plain;
      prop_st_quotient_bounded_by_worst_case;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "extensions"
    [
      ( "prng",
        [
          tc "deterministic" `Quick test_prng_deterministic;
          tc "float range" `Quick test_prng_float_range;
          tc "uniformity" `Quick test_prng_uniformity;
          tc "int bound" `Quick test_prng_int_bound;
          tc "int distribution" `Quick test_prng_int_distribution;
          tc "int large bounds reachable" `Quick
            test_prng_int_large_bound_reachable;
          tc "split" `Quick test_prng_split_independent;
          tc "split stream independence" `Quick
            test_prng_split_stream_independence;
        ] );
      ( "csv",
        [
          tc "escape" `Quick test_csv_escape;
          tc "write roundtrip" `Quick test_csv_write_roundtrip;
          tc "arity" `Quick test_csv_arity;
        ] );
      ( "randomized",
        [
          tc "optimal beta" `Quick test_krt_optimal_beta;
          tc "formula at optimum" `Quick test_krt_formula_at_optimum;
          tc "beats deterministic" `Quick test_krt_beats_deterministic;
          tc "concrete detection times" `Quick test_krt_detection_time_concrete;
          tc "quadrature matches formula" `Quick test_krt_quadrature_matches_formula;
          tc "monte carlo agrees" `Quick test_krt_monte_carlo_agrees;
        ] );
      ( "work_schedule",
        [
          tc "single-robot anchor" `Quick test_ws_single_robot_anchor;
          tc "concrete work" `Quick test_ws_work_to_visit_concrete;
          tc "budget exhaustion" `Quick test_ws_budget_exhaustion;
          tc "more robots help" `Quick test_ws_more_robots_help;
          tc "sequential beats parallel-charged" `Quick
            test_ws_sequential_beats_parallel_charged;
          tc "validation" `Quick test_ws_validation;
        ] );
      ( "turn_cost",
        [
          tc "reversal count" `Quick test_tc_reversal_count;
          tc "c=0 matches engine" `Quick test_tc_zero_cost_matches_engine;
          tc "monotone in c" `Quick test_tc_cost_monotone_in_c;
          tc "bases converge at high c" `Quick test_tc_bases_converge_at_high_c;
          tc "origin charging" `Quick test_tc_origin_charging;
        ] );
      ( "stochastic",
        [
          tc "validation" `Quick test_st_distribution_validation;
          tc "expected distance" `Quick test_st_expected_distance;
          tc "point mass" `Quick test_st_point_mass_matches_engine;
          tc "beck quotient" `Quick test_st_beck_quotient_below_worst_case;
          tc "sided sweep" `Quick test_st_sided_sweep_beats_doubling_on_known_dist;
          tc "undetectable" `Quick test_st_undetectable_is_infinite;
        ] );
      ( "induction",
        [
          tc "exponential is Case 1" `Quick test_ind_exponential_is_case1;
          tc "detects jumps" `Quick test_ind_detects_jumps;
          tc "Case 2 reduction shape" `Quick test_ind_case2_reduction_shape;
          tc "reduction verified on real strategy" `Quick
            test_ind_verify_reduction_on_real_strategy;
          tc "epsilon'" `Quick test_ind_epsilon';
        ] );
      ("properties", properties);
    ]
