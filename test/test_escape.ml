(* Tests for the escape analysis family: fixture trees compiled with
   ocamlc -bin-annot, driven through [Deep.collect] with [~escape:true]
   and [Driver.run ~escape:true].

   Covers the three advertised detectors — exception flow across public
   boundaries with shortest witness chains ([escape-exn], including the
   [.cmti] export-set privacy contract), release discipline on raising
   paths ([escape-leak], with the [@releases] audit and the
   [Fun.protect] + closer shape), and sim hygiene from the [lib/dst]
   seam ([escape-realio], with the [@real_io] barrier) — plus the rule
   catalogue's exhaustiveness contract, release-on-raise regressions
   for the tree's own with_-wrappers, and the registered
   [analysis.escape_self_clean] fuzz invariant. *)

module Finding = Search_analysis.Finding
module Budget = Search_analysis.Budget
module Driver = Search_analysis.Driver
module Deep = Search_analysis.Deep
module Escape = Search_analysis.Escape
module Catalogue = Search_analysis.Catalogue
module Rules = Search_analysis.Rules
module Pool = Search_exec.Pool
module Lockfile = Search_resilience.Lockfile
module Client = Search_serve.Client
module Invariant = Search_check.Invariant
module Case = Search_check.Case
module E = Search_numerics.Search_error

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* Unlike the hotpath fixture helper this one creates nested
   directories, so a [lib/dst/] seam fixture is expressible. *)
let make_tree files =
  let root = Filename.temp_file "faulty_search_escape" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  List.iter
    (fun (name, contents) ->
      let path = Filename.concat root name in
      mkdir_p (Filename.dirname path);
      write_file path contents)
    files;
  root

(* Compile fixtures from the tree root so cmt_sourcefile comes out
   repo-relative ("lib/a.ml"), the way dune records it.  [.mli] files
   listed before their [.ml] compile to the [.cmti] the export pass
   reads. *)
let compile root files =
  Sys.command
    (Printf.sprintf "cd %s && ocamlc -bin-annot -c -I lib %s >/dev/null 2>&1"
       (Filename.quote root)
       (String.concat " " files))
  = 0

let have_ocamlc = lazy (Sys.command "ocamlc -version >/dev/null 2>&1" = 0)
let with_ocamlc k = if Lazy.force have_ocamlc then k () else ()

let collect root =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Deep.collect ~pool ~deep:false ~hotpath:false ~escape:true
    ~audited:(fun _ -> false)
    ~budget:Budget.empty ~dirs:[ "lib" ] ~root

let by_rule rule findings =
  List.filter (fun f -> String.equal f.Finding.rule rule) findings

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s
    && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  go 0

(* A stub Unix module: the realio rule matches display names, so a
   local lib/unix.ml exercises it without linking the real library. *)
let unix_stub =
  ( "lib/unix.ml",
    "let sleep (_ : int) = ()\nlet sleepf (_ : float) = ()\n" )

(* ------------------------------------------------------------------ *)
(* escape-exn                                                          *)

let test_exn_direct () =
  with_ocamlc @@ fun () ->
  let root = make_tree [ ("lib/a.ml", "let go () = raise Not_found\n") ] in
  check_bool "fixtures compile" true (compile root [ "lib/a.ml" ]);
  let findings, units, _ = collect root in
  check_int "one unit" 1 units;
  match by_rule "escape-exn" findings with
  | [ f ] ->
      check_string "at the raise site" "lib/a.ml" f.Finding.file;
      check_int "raise line" 1 f.Finding.line;
      check_bool "witness names the boundary and the site" true
        (contains f.Finding.message
           "exception Not_found escapes public A.go: A.go -> <raise \
            Not_found at lib/a.ml:1>")
  | fs -> Alcotest.failf "expected one escape-exn, got %d" (List.length fs)

let test_exn_transitive_chain () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        ( "lib/b.ml",
          "let deep_raise () = raise Not_found\n\
           let mid () = deep_raise ()\n\
           let top () = mid ()\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/b.ml" ]);
  let findings, _, _ = collect root in
  let exn = by_rule "escape-exn" findings in
  (* all three defs are public boundaries of the mli-less unit *)
  check_int "three boundaries flagged" 3 (List.length exn);
  check_bool "shortest chain from the top" true
    (List.exists
       (fun f ->
         contains f.Finding.message
           "B.top -> B.mid -> B.deep_raise -> <raise Not_found at lib/b.ml:1>")
       exn);
  List.iter
    (fun f ->
      check_string "blamed on the raising def's file" "lib/b.ml"
        f.Finding.file;
      check_int "blamed on the raise line" 1 f.Finding.line)
    exn

let test_exn_handler_and_privacy () =
  with_ocamlc @@ fun () ->
  (* the helper's exception is caught at the call site, and the helper
     itself is private to the unit's .mli: nothing escapes *)
  let root =
    make_tree
      [
        ("lib/c.mli", "val safe : unit -> int\n");
        ( "lib/c.ml",
          "let helper () = raise Not_found\n\
           let safe () = try helper () with Not_found -> 0\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/c.mli"; "lib/c.ml" ]);
  let findings, _, _ = collect root in
  check_int "handled + private: clean" 0
    (List.length (by_rule "escape-exn" findings))

let test_exn_no_mli_is_fully_public () =
  with_ocamlc @@ fun () ->
  (* same sources, no interface: the helper becomes a public boundary
     and is flagged; the catching caller stays clean *)
  let root =
    make_tree
      [
        ( "lib/c.ml",
          "let helper () = raise Not_found\n\
           let safe () = try helper () with Not_found -> 0\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/c.ml" ]);
  let findings, _, _ = collect root in
  match by_rule "escape-exn" findings with
  | [ f ] ->
      check_bool "the helper, not the catcher" true
        (contains f.Finding.message "escapes public C.helper")
  | fs -> Alcotest.failf "expected one escape-exn, got %d" (List.length fs)

let test_exn_sanctioned_escapes () =
  with_ocamlc @@ fun () ->
  (* the documented fail-fast idiom stays legal at boundaries *)
  let root =
    make_tree
      [
        ( "lib/s.ml",
          "let check x = if x < 0 then invalid_arg \"neg\" else x\n\
           let sure x = assert (x >= 0); x\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/s.ml" ]);
  let findings, _, _ = collect root in
  check_int "Invalid_argument/Assert_failure sanctioned" 0
    (List.length (by_rule "escape-exn" findings));
  check_bool "sanctioned set is the documented trio" true
    (List.sort String.compare Escape.sanctioned_escapes
    = [ "Assert_failure"; "Invalid_argument"; "Search_error.Error" ])

(* ------------------------------------------------------------------ *)
(* escape-leak                                                         *)

let test_leak_bare_acquisition () =
  with_ocamlc @@ fun () ->
  let root = make_tree [ ("lib/l.ml", "let leak path = open_out path\n") ] in
  check_bool "fixtures compile" true (compile root [ "lib/l.ml" ]);
  let findings, _, _ = collect root in
  match by_rule "escape-leak" findings with
  | [ f ] ->
      check_string "at the acquisition" "lib/l.ml" f.Finding.file;
      check_int "acquisition line" 1 f.Finding.line;
      check_bool "names the class, the acquirer and the def" true
        (contains f.Finding.message
           "channel acquired by open_out in L.leak is not released")
  | fs -> Alcotest.failf "expected one escape-leak, got %d" (List.length fs)

let test_leak_protected_release () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        ( "lib/l.ml",
          "let ok path =\n\
          \  let oc = open_out path in\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> close_out_noerr oc)\n\
          \    (fun () -> output_string oc \"x\")\n" );
      ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/l.ml" ]);
  let findings, _, _ = collect root in
  check_int "protect + closer: clean" 0
    (List.length (by_rule "escape-leak" findings))

let test_leak_releases_audit () =
  with_ocamlc @@ fun () ->
  (* ownership transfer: the audit attribute silences the rule *)
  let root =
    make_tree
      [ ("lib/l.ml", "let[@releases] transfer path = open_out path\n") ]
  in
  check_bool "fixtures compile" true (compile root [ "lib/l.ml" ]);
  let findings, _, _ = collect root in
  check_int "[@releases]: clean" 0
    (List.length (by_rule "escape-leak" findings))

(* ------------------------------------------------------------------ *)
(* escape-realio                                                       *)

let realio_fixture ~barrier =
  [
    unix_stub;
    ( "lib/w.ml",
      Printf.sprintf "let wrap2 () = Unix.sleepf 0.1\nlet%s wrap1 () = wrap2 ()\n"
        (if barrier then "[@real_io]" else "") );
    ("lib/dst/d.ml", "let fiber () = W.wrap1 ()\n");
  ]

let realio_files = [ "lib/unix.ml"; "lib/w.ml"; "lib/dst/d.ml" ]

let test_realio_chain () =
  with_ocamlc @@ fun () ->
  let root = make_tree (realio_fixture ~barrier:false) in
  check_bool "fixtures compile" true (compile root realio_files);
  let findings, units, _ = collect root in
  check_int "three units" 3 units;
  match by_rule "escape-realio" findings with
  | [ f ] ->
      check_string "at the referencing def" "lib/w.ml" f.Finding.file;
      check_int "reference line" 1 f.Finding.line;
      check_bool "full chain from the seam" true
        (contains f.Finding.message
           "D.fiber -> W.wrap1 -> W.wrap2 -> Unix.sleepf")
  | fs -> Alcotest.failf "expected one escape-realio, got %d" (List.length fs)

let test_realio_barrier () =
  with_ocamlc @@ fun () ->
  let root = make_tree (realio_fixture ~barrier:true) in
  check_bool "fixtures compile" true (compile root realio_files);
  let findings, _, _ = collect root in
  check_int "[@real_io] barrier stops the traversal" 0
    (List.length (by_rule "escape-realio" findings))

(* ------------------------------------------------------------------ *)
(* driver                                                              *)

let test_driver_exit_and_jobs_invariance () =
  with_ocamlc @@ fun () ->
  (* one fixture per rule: the driver must exit 1 on escape findings
     and render byte-identically at any job count *)
  let root =
    make_tree
      (realio_fixture ~barrier:false
      @ [
          ("lib/a.ml", "let go () = raise Not_found\n");
          ("lib/l.ml", "let leak path = open_out path\n");
        ])
  in
  check_bool "fixtures compile" true
    (compile root (realio_files @ [ "lib/a.ml"; "lib/l.ml" ]));
  let run jobs = Driver.run ~jobs ~rules:[] ~escape:true ~dirs:[ "lib" ] ~root () in
  let out = run 1 in
  check_bool "all three rules fire" true
    (List.for_all
       (fun r -> by_rule r out.Driver.findings <> [])
       Escape.rule_ids);
  check_int "findings exit 1" 1 (Driver.exit_code out);
  check_string "jobs 1 = jobs 4 bytes" (Driver.render_json out)
    (Driver.render_json (run 4))

(* ------------------------------------------------------------------ *)
(* rule catalogue                                                      *)

(* every rule id any family can emit, by construction of the emitters *)
let emitted_ids =
  List.map (fun (r : Rules.rule) -> r.Rules.id) Rules.all
  @ [ "deep-nondet"; "deep-race"; "deep-lock-order" ]
  @ [ "hotpath-alloc"; "hotpath-blocking" ]
  @ Escape.rule_ids
  @ [ "parse"; "cmt-load" ]

let test_catalogue_exhaustive () =
  List.iter
    (fun id ->
      check_bool (Printf.sprintf "%s is catalogued" id) true
        (Catalogue.find id <> None))
    emitted_ids;
  let ids = List.map (fun (e : Catalogue.entry) -> e.Catalogue.id) Catalogue.all in
  check_int "catalogue has no extras" (List.length emitted_ids)
    (List.length ids);
  check_int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_catalogue_families () =
  check_bool "escape ids under the Escape family" true
    (Catalogue.ids_of Catalogue.Escape = Escape.rule_ids);
  List.iter
    (fun id ->
      match Catalogue.find id with
      | Some e ->
          check_bool (id ^ " gated by --escape") true
            (Catalogue.family_flag e.Catalogue.family = Some "--escape")
      | None -> Alcotest.failf "%s not catalogued" id)
    Escape.rule_ids;
  check_bool "syntactic rules are ungated" true
    (Catalogue.family_flag Catalogue.Syntactic = None);
  check_bool "internal pseudo-rules are ungated" true
    (Catalogue.family_flag Catalogue.Internal = None)

(* ------------------------------------------------------------------ *)
(* release-on-raise regressions for the tree's own wrappers            *)

exception Boom

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let test_with_client_releases_on_raise () =
  (* a listening Unix-domain socket lets connect succeed without a
     server loop; the client's fd must be gone after the raise *)
  let path = Filename.temp_file "fsearch_escape" ".sock" in
  Sys.remove path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close listener;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX path);
      Unix.listen listener 4;
      match open_fds () with
      | None -> () (* no /proc: nothing to measure on this platform *)
      | Some before ->
          (match
             Client.with_client ~socket_path:path (fun _ -> raise Boom)
           with
          | exception Boom -> ()
          | _ -> Alcotest.fail "callback exception swallowed");
          check_int "no descriptor survives the raise" before
            (Option.get (open_fds ())))

let test_with_lock_releases_on_raise () =
  let path = Filename.temp_file "fsearch_escape" ".lock" in
  Sys.remove path;
  (match Lockfile.with_lock ~path (fun () -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "callback exception swallowed");
  check_bool "sentinel unlinked on the raising path" false
    (Sys.file_exists path);
  (* and the lock is immediately re-acquirable, without waiting for
     staleness recovery *)
  check_int "re-acquirable" 41 (Lockfile.with_lock ~path (fun () -> 41))

let test_with_pool_teardown_on_raise () =
  let captured = ref None in
  (match
     Pool.with_pool ~jobs:2 (fun pool ->
         captured := Some pool;
         raise Boom)
   with
  | exception Boom -> ()
  | _ -> Alcotest.fail "callback exception swallowed");
  match !captured with
  | None -> Alcotest.fail "callback never ran"
  | Some pool -> (
      match Pool.async pool (fun () -> 1) with
      | exception E.Error (E.Pool_closed _) -> ()
      | _ -> Alcotest.fail "pool survived the raising path")

(* ------------------------------------------------------------------ *)
(* the registered fuzz invariant                                       *)

let sample_case =
  {
    Case.id = 0;
    m = 4;
    k = 3;
    f = 1;
    horizon = 40.;
    alpha_scale = 1.;
    lambda_frac = 0.5;
    targets = [ (0, 3.) ];
    turn_seed = 7;
  }

let test_escape_invariant_registered () =
  Invariant.register_escape_invariant ();
  check_bool "listed after the built-in catalogue" true
    (List.mem "analysis.escape_self_clean" (Invariant.names ()));
  check_bool "sample case valid" true (Case.valid sample_case);
  let violations =
    List.filter
      (fun v ->
        String.equal v.Invariant.invariant "analysis.escape_self_clean")
      (Invariant.check_case sample_case)
  in
  List.iter
    (fun v -> Printf.eprintf "escape_self_clean: %s\n" v.Invariant.detail)
    violations;
  check_int "own tree escape-lints clean (or vacuously so)" 0
    (List.length violations);
  (* registration is idempotent: re-registering does not duplicate *)
  Invariant.register_escape_invariant ();
  check_int "registered once" 1
    (List.length
       (List.filter
          (String.equal "analysis.escape_self_clean")
          (Invariant.names ())))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "escape"
    [
      ( "exn",
        [
          Alcotest.test_case "direct raise" `Quick test_exn_direct;
          Alcotest.test_case "transitive chain" `Quick
            test_exn_transitive_chain;
          Alcotest.test_case "handler + mli privacy" `Quick
            test_exn_handler_and_privacy;
          Alcotest.test_case "no mli is fully public" `Quick
            test_exn_no_mli_is_fully_public;
          Alcotest.test_case "sanctioned escapes" `Quick
            test_exn_sanctioned_escapes;
        ] );
      ( "leak",
        [
          Alcotest.test_case "bare acquisition" `Quick
            test_leak_bare_acquisition;
          Alcotest.test_case "protected release" `Quick
            test_leak_protected_release;
          Alcotest.test_case "[@releases] audit" `Quick
            test_leak_releases_audit;
        ] );
      ( "realio",
        [
          Alcotest.test_case "chain from the seam" `Quick test_realio_chain;
          Alcotest.test_case "[@real_io] barrier" `Quick test_realio_barrier;
        ] );
      ( "driver",
        [
          Alcotest.test_case "exit code and jobs invariance" `Quick
            test_driver_exit_and_jobs_invariance;
        ] );
      ( "catalogue",
        [
          Alcotest.test_case "every emitted rule catalogued" `Quick
            test_catalogue_exhaustive;
          Alcotest.test_case "families and flags" `Quick
            test_catalogue_families;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "with_client releases on raise" `Quick
            test_with_client_releases_on_raise;
          Alcotest.test_case "with_lock releases on raise" `Quick
            test_with_lock_releases_on_raise;
          Alcotest.test_case "with_pool tears down on raise" `Quick
            test_with_pool_teardown_on_raise;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "escape_self_clean registered" `Quick
            test_escape_invariant_registered;
        ] );
    ]
