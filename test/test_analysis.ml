(* Tests for the determinism & numeric-safety lint pass: per-rule
   positive/negative fixtures through [Driver.lint_string], the finding
   JSON round-trip, the allowlist parser, and byte-identical reports at
   different pool sizes. *)

module Finding = Search_analysis.Finding
module Allow = Search_analysis.Allow
module Rules = Search_analysis.Rules
module Driver = Search_analysis.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let rules_hit ?rules ?has_mli ~path src =
  Driver.lint_string ?rules ?has_mli ~path src
  |> List.map (fun f -> f.Finding.rule)
  |> List.sort_uniq String.compare

let hits rule ?has_mli ~path src =
  List.exists (String.equal rule) (rules_hit ?has_mli ~path src)

let test_poly_compare () =
  check_bool "float (=) in lib" true
    (hits "poly-compare" ~path:"lib/sim/fix.ml" "let eq (a : float) b = a = b");
  check_bool "bare compare" true
    (hits "poly-compare" ~path:"lib/sim/fix.ml" "let c x y = compare x y");
  check_bool "compare via min" true
    (hits "poly-compare" ~path:"lib/sim/fix.ml" "let m a = min a 1.5");
  check_bool "immediate operand ok" false
    (hits "poly-compare" ~path:"lib/sim/fix.ml" "let z n = n = 0");
  check_bool "Int.equal ok" false
    (hits "poly-compare" ~path:"lib/sim/fix.ml" "let e a b = Int.equal a b");
  check_bool "local compare definition ok" false
    (hits "poly-compare" ~path:"lib/sim/fix.ml"
       "let compare a b = Int.compare a b\nlet user x y = compare x y");
  (* outside lib/ only float-smelling or structured operands count *)
  check_bool "ident (=) in tests ok" false
    (hits "poly-compare" ~path:"test/fix.ml" "let eq a b = a = b");
  check_bool "float (=) in tests flagged" true
    (hits "poly-compare" ~path:"test/fix.ml" "let eq a = a = 1.5")

let test_nondet () =
  check_bool "Random" true
    (hits "nondet" ~path:"lib/sim/fix.ml" "let r () = Random.int 5");
  check_bool "Sys.time" true
    (hits "nondet" ~path:"lib/sim/fix.ml" "let t () = Sys.time ()");
  check_bool "Hashtbl.hash" true
    (hits "nondet" ~path:"lib/sim/fix.ml" "let h x = Hashtbl.hash x");
  check_bool "pure code ok" false
    (hits "nondet" ~path:"lib/sim/fix.ml" "let r () = 5")

let test_float_hygiene () =
  check_bool "nan literal" true
    (hits "float-hygiene" ~path:"lib/sim/fix.ml" "let x = nan");
  check_bool "unguarded float_of_string" true
    (hits "float-hygiene" ~path:"lib/sim/fix.ml"
       "let f s = float_of_string s");
  check_bool "float_of_string_opt ok" false
    (hits "float-hygiene" ~path:"lib/sim/fix.ml"
       "let f s = float_of_string_opt s")

let test_lock_discipline () =
  check_bool "bare lock" true
    (hits "lock-discipline" ~path:"lib/exec/fix.ml" "let f m = Mutex.lock m");
  check_bool "bare unlock" true
    (hits "lock-discipline" ~path:"lib/exec/fix.ml"
       "let f m = Mutex.unlock m");
  check_bool "Mutex.protect ok" false
    (hits "lock-discipline" ~path:"lib/exec/fix.ml"
       "let f m g = Mutex.protect m g")

let test_unsafe_ops () =
  check_bool "Obj.magic" true
    (hits "unsafe-ops" ~path:"lib/sim/fix.ml" "let f x = Obj.magic x");
  check_bool "unsafe_get" true
    (hits "unsafe-ops" ~path:"lib/sim/fix.ml"
       "let f a = Array.unsafe_get a 0");
  check_bool "%identity external" true
    (hits "unsafe-ops" ~path:"lib/sim/fix.ml"
       "external id : int -> int = \"%identity\"");
  check_bool "safe get ok" false
    (hits "unsafe-ops" ~path:"lib/sim/fix.ml" "let f a = Array.get a 0")

let test_output_discipline () =
  check_bool "print_string in lib" true
    (hits "output-discipline" ~path:"lib/sim/fix.ml"
       "let f () = print_string \"x\"");
  check_bool "Format.printf in lib" true
    (hits "output-discipline" ~path:"lib/sim/fix.ml"
       "let f () = Format.printf \"x\"");
  check_bool "printing in bin ok" false
    (hits "output-discipline" ~path:"bin/fix.ml"
       "let f () = print_string \"x\"");
  check_bool "formatter-passing ok" false
    (hits "output-discipline" ~path:"lib/sim/fix.ml"
       "let f ppf = Format.fprintf ppf \"x\"")

let test_mli_coverage () =
  check_bool "lib module without mli" true
    (hits "mli-coverage" ~has_mli:false ~path:"lib/sim/fix.ml" "let x = 1");
  check_bool "lib module with mli ok" false
    (hits "mli-coverage" ~has_mli:true ~path:"lib/sim/fix.ml" "let x = 1");
  check_bool "test module without mli ok" false
    (hits "mli-coverage" ~has_mli:false ~path:"test/fix.ml" "let x = 1")

let test_closed_variant_wildcard () =
  check_bool "catch-all over closed variant" true
    (hits "closed-variant-wildcard" ~path:"lib/sim/fix.ml"
       "let f k = match k with Fault.Crash -> 1 | _ -> 2");
  check_bool "exhaustive match ok" false
    (hits "closed-variant-wildcard" ~path:"lib/sim/fix.ml"
       "let f k = match k with Fault.Crash -> 1 | Fault.Byzantine -> 2");
  check_bool "try with is exempt" false
    (hits "closed-variant-wildcard" ~path:"lib/sim/fix.ml"
       "let f g = try g () with Not_found -> 1 | _ -> 2")

let test_global_mutable_state () =
  check_bool "top-level ref" true
    (hits "global-mutable-state" ~path:"lib/sim/fix.ml" "let cache = ref 0");
  check_bool "top-level Hashtbl" true
    (hits "global-mutable-state" ~path:"lib/sim/fix.ml"
       "let tbl = Hashtbl.create 16");
  check_bool "local ref ok" false
    (hits "global-mutable-state" ~path:"lib/sim/fix.ml"
       "let count xs = let n = ref 0 in List.iter (fun _ -> incr n) xs; !n");
  check_bool "top-level mutex ok" false
    (hits "global-mutable-state" ~path:"lib/sim/fix.ml"
       "let m = Mutex.create ()")

let test_parse_error_is_a_finding () =
  let findings = Driver.lint_string ~path:"lib/sim/fix.ml" "let let let" in
  check_bool "syntax error reported" true
    (List.exists (fun f -> String.equal f.Finding.rule "parse") findings)

let test_rule_selection () =
  let src = "let eq (a : float) b = a = b\nlet r () = Random.int 5" in
  let only = rules_hit ~rules:[ "nondet" ] ~path:"lib/sim/fix.ml" src in
  check_bool "restricted to nondet" true
    (List.for_all (String.equal "nondet") only && only <> [])

(* ------------------------------------------------------------------ *)
(* Finding JSON round-trip *)

let test_finding_json_roundtrip () =
  let findings =
    Driver.lint_string ~has_mli:false ~path:"lib/sim/fix.ml"
      "let eq (a : float) b = a = b\nlet r () = Random.bool ()\nlet x = nan"
  in
  check_bool "fixture produced findings" true (List.length findings >= 3);
  List.iter
    (fun f ->
      match Finding.of_json (Finding.to_json f) with
      | Ok f' -> check_int "roundtrip exact" 0 (Finding.compare f f')
      | Error e -> Alcotest.failf "of_json failed: %s" e)
    findings

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let test_allow_parse () =
  match
    Allow.parse
      "# header comment\n\
       poly-compare lib/a.ml # why it is fine\n\
       * lib/b.ml\n\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      check_int "two entries" 2 (List.length (Allow.entries t));
      check_bool "listed pair permitted" true
        (Allow.permits t ~rule:"poly-compare" ~file:"lib/a.ml");
      check_bool "other rule same file" false
        (Allow.permits t ~rule:"nondet" ~file:"lib/a.ml");
      check_bool "wildcard rule" true
        (Allow.permits t ~rule:"nondet" ~file:"lib/b.ml");
      check_bool "unlisted file" false
        (Allow.permits t ~rule:"nondet" ~file:"lib/c.ml")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
  in
  at 0

let test_allow_rejects_garbage () =
  match Allow.parse "only-one-token\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
      check_bool "error names the line" true (contains msg "lint.allow:1")

(* ------------------------------------------------------------------ *)
(* Driver determinism on a real (temporary) tree *)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let make_fixture_root () =
  let root = Filename.temp_file "faulty_search_lint" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  write_file
    (Filename.concat root "lib/bad.ml")
    "let eq (a : float) b = a = b\nlet t () = Sys.time ()\n";
  write_file (Filename.concat root "lib/ok.ml") "let add a b = a + b\n";
  write_file (Filename.concat root "lib/ok.mli") "val add : int -> int -> int\n";
  root

let test_driver_jobs_invariance () =
  let root = make_fixture_root () in
  let o1 = Driver.run ~jobs:1 ~root () in
  let o4 = Driver.run ~jobs:4 ~root () in
  check_bool "found the planted violations" true
    (List.length o1.Driver.findings >= 3);
  check_string "text report byte-identical" (Driver.render_text o1)
    (Driver.render_text o4);
  check_string "json report byte-identical" (Driver.render_json o1)
    (Driver.render_json o4)

let test_driver_allowlist_filters () =
  let root = make_fixture_root () in
  write_file
    (Filename.concat root "lint.allow")
    "poly-compare lib/bad.ml\nnondet lib/bad.ml\nmli-coverage lib/bad.ml\n";
  match Driver.load_allow ~root with
  | Error e -> Alcotest.failf "load_allow: %s" e
  | Ok allow ->
      let out = Driver.run ~jobs:1 ~allow ~root () in
      check_int "everything suppressed" 0 (List.length out.Driver.findings);
      check_bool "suppressions counted" true (out.Driver.suppressed >= 3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "nondet" `Quick test_nondet;
          Alcotest.test_case "float-hygiene" `Quick test_float_hygiene;
          Alcotest.test_case "lock-discipline" `Quick test_lock_discipline;
          Alcotest.test_case "unsafe-ops" `Quick test_unsafe_ops;
          Alcotest.test_case "output-discipline" `Quick test_output_discipline;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
          Alcotest.test_case "closed-variant-wildcard" `Quick
            test_closed_variant_wildcard;
          Alcotest.test_case "global-mutable-state" `Quick
            test_global_mutable_state;
          Alcotest.test_case "parse errors" `Quick test_parse_error_is_a_finding;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
        ] );
      ( "finding",
        [ Alcotest.test_case "json roundtrip" `Quick test_finding_json_roundtrip ] );
      ( "allow",
        [
          Alcotest.test_case "parse + permits" `Quick test_allow_parse;
          Alcotest.test_case "rejects garbage" `Quick test_allow_rejects_garbage;
        ] );
      ( "driver",
        [
          Alcotest.test_case "jobs invariance" `Quick
            test_driver_jobs_invariance;
          Alcotest.test_case "allowlist filtering" `Quick
            test_driver_allowlist_filters;
        ] );
    ]
