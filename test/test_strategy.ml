(* Tests for the strategy layer: turning sequences, line zigzag semantics
   (the closed formula of Section 2), ORC round semantics, the
   normalisation transformers, the m-ray exponential strategy of the
   appendix, cyclic strategies, baselines and group dispatch. *)

module Turning = Search_strategy.Turning
module LZ = Search_strategy.Line_zigzag
module OR = Search_strategy.Orc_round
module Norm = Search_strategy.Normalize
module Mray = Search_strategy.Mray_exponential
module Cyclic = Search_strategy.Cyclic
module Baseline = Search_strategy.Baseline
module Group = Search_strategy.Group
module P = Search_bounds.Params
module F = Search_bounds.Formulas
module W = Search_sim.World
module Tr = Search_sim.Trajectory
module It = Search_sim.Itinerary
module I = Search_numerics.Interval1

let checkf = Alcotest.(check (float 1e-9))
let checkf6 = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let doubling = Turning.geometric ~scale:0.5 ~alpha:2. ()
(* t_i = 0.5 * 2^i = 1, 2, 4, ... *)

(* ------------------------------------------------------------------ *)
(* Turning *)

let test_turning_geometric () =
  checkf "t1" 1. (Turning.get doubling 1);
  checkf "t3" 4. (Turning.get doubling 3);
  checkf "partial sum" 7. (Turning.partial_sum doubling 3);
  checkf "empty sum" 0. (Turning.partial_sum doubling 0)

let test_turning_of_list_then () =
  let t = Turning.of_list_then [ 5.; 6. ] (fun i -> float_of_int (10 * i)) in
  checkf "prefix" 5. (Turning.get t 1);
  checkf "tail" 30. (Turning.get t 3)

let test_turning_constant_then_geometric () =
  let t = Turning.constant_then_geometric ~first:3. ~alpha:2. in
  checkf "first" 3. (Turning.get t 1);
  checkf "second" 6. (Turning.get t 2)

let test_turning_nondecreasing () =
  check_bool "geometric is nondecreasing" true
    (Turning.nondecreasing_prefix doubling ~n:10);
  let bad = Turning.of_list_then [ 2.; 1. ] (fun i -> float_of_int i) in
  check_bool "decreasing detected" false (Turning.nondecreasing_prefix bad ~n:2)

let test_turning_scale () =
  let t = Turning.scale doubling 3. in
  checkf "scaled" 3. (Turning.get t 1);
  Alcotest.check_raises "bad scale" (Invalid_argument "Turning.scale: need c > 0")
    (fun () -> ignore (Turning.scale doubling 0.))

let test_turning_negative_rejected () =
  let t = Turning.of_fun (fun i -> if i = 2 then -1. else 1.) in
  ignore (Turning.get t 1);
  match Turning.get t 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative turning point accepted"

let test_turning_map_indices () =
  let t = Turning.map_indices doubling (fun i -> 2 * i) in
  checkf "even subsequence" 2. (Turning.get t 1);
  checkf "second" 8. (Turning.get t 2)

(* ------------------------------------------------------------------ *)
(* Compiled (flat-array) view: must replay the lazy view bit for bit *)

let check_bits name a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: lazy %h <> compiled %h" name a b

let test_compiled_basic () =
  let c = Turning.compile ~hint:4 doubling in
  check_bool "source" true (Turning.source c == doubling);
  checkf "get" 4. (Turning.compiled_get c 3);
  checkf "partial sum" 7. (Turning.compiled_partial_sum c 3);
  checkf "empty sum" 0. (Turning.compiled_partial_sum c 0);
  check_bool "length grows" true (Turning.compiled_length c >= 3)

let test_compiled_negative_rejected () =
  let t = Turning.of_fun (fun i -> if i = 2 then -1. else 1.) in
  let c = Turning.compile t in
  ignore (Turning.compiled_get c 1);
  match Turning.compiled_get c 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative turning point accepted by compiled view"

(* Property: over fuzz-grade generated strategies (noisy, possibly
   non-monotone), every prefix value and Kahan partial sum of the
   compiled view equals the lazy view bitwise — under interleaved
   access orders, since the compiled view grows on demand. *)
let test_compiled_matches_lazy_generated () =
  let depth = 96 in
  List.iter
    (fun case ->
      Array.iter
        (fun t ->
          let c = Turning.compile t in
          (* descending first touch: one ensure-growth, then cached *)
          for i = depth downto 1 do
            check_bits
              (Printf.sprintf "get %d" i)
              (Turning.get t i)
              (Turning.compiled_get c i)
          done;
          for i = 0 to depth do
            check_bits
              (Printf.sprintf "partial_sum %d" i)
              (Turning.partial_sum t i)
              (Turning.compiled_partial_sum c i)
          done;
          (* a second, stride-interleaved pass out of the cache *)
          for i = 1 to depth / 3 do
            let j = ((i * 29) mod depth) + 1 in
            check_bits
              (Printf.sprintf "interleaved %d" j)
              (Turning.partial_sum t j)
              (Turning.compiled_partial_sum c j)
          done)
        (Search_check.Gen.turning_group case))
    (Search_check.Gen.cases ~seed:20180723 ~count:20)

(* The prefix walk reads only the materialised prefix: the 0-length
   walk is 0. on a fresh (empty) view, walking past the prefix raises
   instead of growing, and a warmed walk equals the explicit sum of
   partial sums bit for bit. *)
let test_compiled_prefix_walk () =
  let c = Turning.compile ~hint:4 doubling in
  checkf "empty prefix" 0. (Turning.compiled_prefix_walk c 0);
  (match Turning.compiled_prefix_walk c 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "walk past the materialised prefix accepted");
  (match Turning.compiled_prefix_walk c (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative depth accepted");
  ignore (Turning.compiled_partial_sum c 5);
  let expected = ref 0. in
  for i = 1 to 5 do
    expected := !expected +. Turning.compiled_partial_sum c i
  done;
  check_bits "warmed walk" !expected (Turning.compiled_prefix_walk c 5)

(* ------------------------------------------------------------------ *)
(* Line_zigzag: the Section 2 closed formula *)

let test_lz_pair_visit_matches_formula () =
  (* for nondecreasing sequences and t_{i-1} < x <= t_i the motion-level
     time equals 2(t1+...+ti) + x *)
  List.iter
    (fun (x, i) ->
      match LZ.pair_visit_time doubling ~x with
      | Some t ->
          checkf
            (Printf.sprintf "x=%g" x)
            (LZ.pair_visit_time_formula doubling ~x ~i)
            t
      | None -> Alcotest.fail "expected pair visit")
    [ (0.5, 1); (1., 1); (1.5, 2); (2., 2); (3.7, 3); (4., 3); (7.9, 4) ]

let test_lz_cover_threshold () =
  (* eq (3): t''_i = max(sum_i/mu, t_{i-1}) *)
  let mu = 4. in
  checkf "t''_1 = t1+.../mu" (1. /. 4.) (LZ.cover_threshold doubling ~mu ~i:1);
  (* i = 3: sum = 7, 7/4 = 1.75 < t2 = 2 -> threshold is t2 *)
  checkf "t''_3 = t_2" 2. (LZ.cover_threshold doubling ~mu ~i:3);
  (* smaller mu: 7/2 = 3.5 > 2 *)
  checkf "t''_3 with mu=2" 3.5 (LZ.cover_threshold doubling ~mu:2. ~i:3)

let test_lz_fruitful () =
  (* with mu = 4 (lambda = 9) every doubling turn is fruitful *)
  for i = 1 to 8 do
    check_bool (Printf.sprintf "turn %d fruitful" i) true
      (LZ.fruitful doubling ~mu:4. ~i)
  done;
  (* with mu = 1.2 (lambda = 3.4) thresholds overtake the turns:
     (2^i - 1)/1.2 > 2^(i-1) for i >= 2 *)
  check_bool "not fruitful at mu=1.2" false (LZ.fruitful doubling ~mu:1.2 ~i:3)

let test_lz_cover_intervals_tile () =
  (* at mu = 4 the doubling cover intervals [t''_i, t_i] tile [t1, inf) *)
  let ivs = LZ.cover_intervals doubling ~mu:4. ~up_to:10 in
  check_int "all ten fruitful" 10 (List.length ivs);
  let rec tiles = function
    | (_, (a : I.t)) :: ((_, (b : I.t)) :: _ as rest) ->
        a.I.hi >= b.I.lo && tiles rest
    | _ -> true
  in
  check_bool "consecutive intervals touch" true (tiles ivs)

let test_lz_lambda_covers () =
  check_bool "doubling 9-covers 3" true (LZ.lambda_covers doubling ~lambda:9. ~x:3.);
  check_bool "doubling cannot 5-cover 3" false
    (LZ.lambda_covers doubling ~lambda:5. ~x:3.)

let test_lz_itinerary_roundtrip () =
  let tr = Tr.compile (LZ.itinerary doubling) in
  (* motion-level pair-visit of x=1.5 equals trajectory-level computation *)
  let x = 1.5 in
  let tp = Tr.first_visit tr ~target:(W.point W.line ~ray:0 ~dist:x) ~horizon:1e3 in
  let tn = Tr.first_visit tr ~target:(W.point W.line ~ray:1 ~dist:x) ~horizon:1e3 in
  match (tp, tn, LZ.pair_visit_time doubling ~x) with
  | Some a, Some b, Some c -> checkf "agree" (Float.max a b) c
  | _ -> Alcotest.fail "expected visits"

(* ------------------------------------------------------------------ *)
(* Orc_round *)

let test_or_visit_time () =
  (* round i reaches x at 2(t1+...+t_{i-1}) + x *)
  (match OR.visit_time doubling ~i:3 ~x:3. with
  | Some t -> checkf "round 3 at x=3" ((2. *. 3.) +. 3.) t
  | None -> Alcotest.fail "expected reach");
  check_bool "too deep for the round" true (OR.visit_time doubling ~i:2 ~x:3. = None)

let test_or_threshold_excludes_current () =
  (* ORC threshold sums rounds strictly before i *)
  checkf "t''_1 = 0" 0. (OR.cover_threshold doubling ~mu:4. ~i:1);
  checkf "t''_3 = (1+2)/4" 0.75 (OR.cover_threshold doubling ~mu:4. ~i:3)

let test_or_round_cover () =
  (match OR.round_cover doubling ~mu:4. ~i:3 with
  | Some iv ->
      checkf "lo" 0.75 iv.I.lo;
      checkf "hi" 4. iv.I.hi
  | None -> Alcotest.fail "round 3 should cover");
  (* mu tiny: thresholds blow past turn depths *)
  check_bool "unfruitful round" true (OR.round_cover doubling ~mu:0.3 ~i:5 = None)

let test_or_cover_intervals_within () =
  let ivs = OR.cover_intervals_within doubling ~mu:4. ~within:(1., 100.) () in
  check_bool "several rounds intersect" true (List.length ivs >= 6);
  List.iter
    (fun (_, (iv : I.t)) ->
      check_bool "intersects window" true (iv.I.hi >= 1. && iv.I.lo <= 100.))
    ivs

let test_or_itinerary () =
  let w = W.rays 3 in
  let it = OR.itinerary ~world:w ~ray:2 doubling in
  let tr = Tr.compile it in
  (* round 2 reaches depth 1.5 on ray 2 at 2*1 + 1.5 = 3.5 *)
  match Tr.first_visit tr ~target:(W.point w ~ray:2 ~dist:1.5) ~horizon:100. with
  | Some t -> checkf "round semantics" 3.5 t
  | None -> Alcotest.fail "expected visit"

(* ------------------------------------------------------------------ *)
(* Normalize *)

let test_normalize_orc_keeps_fruitful () =
  (* doubling at mu = 4 is all fruitful: normalisation is the identity *)
  let n = Norm.fruitful_only_orc ~mu:4. doubling in
  for i = 1 to 6 do
    checkf (Printf.sprintf "kept t%d" i) (Turning.get doubling i)
      (Turning.get n i)
  done

let test_normalize_orc_drops_unfruitful () =
  (* a sequence with a useless tiny round inserted: (1, 0.1, 2, 4, ...) —
     round 2 has threshold 1/4 = 0.25 > 0.1, hence unfruitful *)
  let t =
    Turning.of_list_then [ 1.; 0.1 ] (fun i -> 2. ** float_of_int (i - 2))
  in
  let n = Norm.fruitful_only_orc ~mu:4. t in
  checkf "keeps 1" 1. (Turning.get n 1);
  checkf "skips 0.1, keeps 2" 2. (Turning.get n 2)

let test_normalize_line_enforces_monotone () =
  (* repeated turning points: the duplicate is dropped in the line setting *)
  let t =
    Turning.of_list_then [ 1.; 1.; 2. ] (fun i -> 2. ** float_of_int (i - 2))
  in
  let n = Norm.fruitful_only_line ~mu:4. t in
  checkf "keeps 1" 1. (Turning.get n 1);
  checkf "drops duplicate, keeps 2" 2. (Turning.get n 2)

let test_normalize_diverges_on_hopeless () =
  (* constant turning points can never be fruitful once the sum grows *)
  let t = Turning.of_fun (fun _ -> 1.) in
  let n = Norm.fruitful_only_orc ~scan_limit:100 ~mu:2. t in
  match Turning.get n 10 with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Non_convergence _) ->
      ()
  | _ -> Alcotest.fail "expected divergence"

let test_normalize_never_shrinks_cover () =
  (* coverage of the normalised strategy contains the original's:
     check pointwise on a grid *)
  let t =
    Turning.of_list_then [ 1.; 0.3; 1.8; 0.5 ]
      (fun i -> 1.8 *. (2. ** float_of_int (i - 4)))
  in
  let mu = 4. in
  let n = Norm.fruitful_only_orc ~mu t in
  let covered turns x =
    OR.cover_intervals_within turns ~mu ~within:(x, x) ()
    |> List.exists (fun (_, iv) -> I.mem x iv)
  in
  for i = 10 to 60 do
    let x = float_of_int i /. 10. in
    if covered t x then
      check_bool (Printf.sprintf "x=%g still covered" x) true (covered n x)
  done

(* ------------------------------------------------------------------ *)
(* Mray_exponential *)

let line31 () = Mray.make (P.line ~k:3 ~f:1)

let test_mray_defaults () =
  let s = line31 () in
  checkf6 "default alpha is alpha*" (F.alpha_star ~q:4 ~k:3) (Mray.alpha s);
  checkf6 "predicted ratio is lambda0" (F.lambda0 ~q:4 ~k:3)
    (Mray.predicted_ratio s)

let test_mray_rejects_trivial () =
  (match Mray.make (P.line ~k:4 ~f:1) with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Regime_violation
           { m = 2; k = 4; f = 1; _ }) ->
      ()
  | _ -> Alcotest.fail "ratio-one instance accepted");
  match Mray.make (P.line ~k:2 ~f:2) with
  | exception
      Search_numerics.Search_error.Error
        (Search_numerics.Search_error.Regime_violation _) ->
      ()
  | _ -> Alcotest.fail "unsolvable instance accepted"

let test_mray_ray_cycle () =
  let s = line31 () in
  check_int "pass 1 on ray 0" 0 (Mray.ray_of_pass s ~l:1);
  check_int "pass 2 on ray 1" 1 (Mray.ray_of_pass s ~l:2);
  check_int "pass 3 on ray 0" 0 (Mray.ray_of_pass s ~l:3);
  check_int "negative pass" 1 (Mray.ray_of_pass s ~l:0);
  check_int "deep negative" 0 (Mray.ray_of_pass s ~l:(-1))

let test_mray_depths_geometric () =
  let s = line31 () in
  let a = Mray.alpha s in
  let d1 = Mray.depth_of_pass s ~robot:0 ~l:5 in
  let d2 = Mray.depth_of_pass s ~robot:0 ~l:6 in
  checkf6 "ratio alpha^k" (a ** 3.) (d2 /. d1);
  (* robots are staggered by alpha^m *)
  let e = Mray.depth_of_pass s ~robot:1 ~l:5 in
  checkf6 "robot stagger alpha^m" (a ** 2.) (e /. d1)

let test_mray_itineraries_count () =
  let s = line31 () in
  check_int "k itineraries" 3 (Array.length (Mray.itineraries s))

let test_mray_assigned_intervals_cover () =
  (* the assigned intervals of all robots cover every distance in [1, 50]
     exactly f+1 = 2 times on each ray *)
  let s = line31 () in
  let module Sweep = Search_numerics.Sweep in
  for ray = 0 to 1 do
    let ivs =
      List.concat_map
        (fun robot ->
          Mray.assigned_intervals_on_ray s ~robot ~ray ~within:(1., 50.))
        [ 0; 1; 2 ]
    in
    match Sweep.check ~demand:2 ~within:(1., 50.) ivs with
    | Sweep.Covered -> ()
    | Sweep.Gap { at; multiplicity; _ } ->
        Alcotest.failf "ray %d: gap at %g (mult %d)" ray at multiplicity
  done

let test_mray_assigned_intervals_exactly_fplus1 () =
  (* not just >= f+1: the assignment is exactly (f+1)-fold in the interior *)
  let s = line31 () in
  let module Sweep = Search_numerics.Sweep in
  let ivs =
    List.concat_map
      (fun robot ->
        Mray.assigned_intervals_on_ray s ~robot ~ray:0 ~within:(1., 50.))
      [ 0; 1; 2 ]
  in
  List.iter
    (fun x ->
      check_int (Printf.sprintf "multiplicity at %g" x) 2
        (Sweep.multiplicity_at x ivs))
    [ 1.7; 3.1; 10.4; 33.3 ]

let test_mray_simulated_ratio_matches () =
  (* m = 3, k = 2, f = 0 simulated on a short horizon *)
  let s = Mray.make (P.make ~m:3 ~k:2 ~f:0) in
  let trs = Array.map Tr.compile (Mray.itineraries s) in
  let out = Search_sim.Adversary.worst_case trs ~f:0 ~n:300. () in
  check_bool "within bound" true
    (out.Search_sim.Adversary.ratio <= Mray.predicted_ratio s +. 1e-6);
  check_bool "close to bound" true
    (out.Search_sim.Adversary.ratio >= Mray.predicted_ratio s -. 0.01)


let test_mray_coverage_theorem_exact () =
  (* the integer residue check: every exponent class is covered exactly
     f+1 times, for all distances, no horizon involved *)
  List.iter
    (fun (m, k, f) ->
      let s = Mray.make (P.make ~m ~k ~f) in
      check_bool
        (Printf.sprintf "theorem (m=%d,k=%d,f=%d)" m k f)
        true
        (Mray.coverage_theorem_holds s);
      Array.iter
        (fun mult -> check_int "exactly f+1" (f + 1) mult)
        (Mray.coverage_multiplicity_by_residue s))
    [ (2, 1, 0); (2, 3, 1); (2, 5, 2); (3, 2, 1); (4, 3, 1); (5, 4, 0) ]

let prop_mray_coverage_theorem =
  QCheck2.Test.make ~count:60 ~name:"coverage theorem on random instances"
    (QCheck2.Gen.(
       let* m = int_range 2 7 in
       let* f = int_range 0 4 in
       let q = m * (f + 1) in
       let* k = int_range (f + 1) (q - 1) in
       return (m, k, f)))
    (fun (m, k, f) ->
      Mray.coverage_theorem_holds (Mray.make (P.make ~m ~k ~f)))

let test_mray_custom_alpha_worse () =
  let p = P.line ~k:3 ~f:1 in
  let s = Mray.make ~alpha:2.2 p in
  check_bool "suboptimal base predicted worse" true
    (Mray.predicted_ratio s > F.lambda0 ~q:4 ~k:3)

(* ------------------------------------------------------------------ *)
(* Cyclic / Baseline *)

let test_cyclic_requires_k_lt_m () =
  match Cyclic.make ~m:3 ~k:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k = m accepted"

let test_cyclic_single_robot_ratio () =
  (* classic m = 3: ratio 1 + 2*27/4 = 14.5 *)
  let tr = [| Tr.compile (Cyclic.single_robot ~m:3 ()) |] in
  let out = Search_sim.Adversary.worst_case tr ~f:0 ~n:500. () in
  check_bool "close to 14.5" true
    (Float.abs (out.Search_sim.Adversary.ratio -. 14.5) < 0.05)

let test_cyclic_doubling_cow () =
  let tr = [| Tr.compile (Cyclic.doubling_cow ()) |] in
  let out = Search_sim.Adversary.worst_case tr ~f:0 ~n:500. () in
  check_bool "close to 9" true (Float.abs (out.Search_sim.Adversary.ratio -. 9.) < 0.01)

let test_baseline_partition () =
  let p = P.make ~m:3 ~k:6 ~f:1 in
  let its = Baseline.partition p in
  check_int "six robots" 6 (Array.length its);
  let trs = Array.map Tr.compile its in
  let out = Search_sim.Adversary.worst_case trs ~f:1 ~n:200. () in
  checkf "ratio one" 1. out.Search_sim.Adversary.ratio

let test_baseline_partition_rejects_searching () =
  match Baseline.partition (P.line ~k:3 ~f:1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "partition in searching regime accepted"

let test_baseline_replicated_tolerates_faults () =
  (* k identical robots visit simultaneously: any f < k tolerated at 9 *)
  let trs = Array.map Tr.compile (Baseline.replicated_doubling ~k:3) in
  let out = Search_sim.Adversary.worst_case trs ~f:2 ~n:500. () in
  check_bool "ratio 9 despite f=2" true
    (Float.abs (out.Search_sim.Adversary.ratio -. 9.) < 0.01)

let test_baseline_sweeper () =
  let its = Baseline.lone_rays_plus_sweeper ~m:3 ~k:2 in
  check_int "two robots" 2 (Array.length its);
  let trs = Array.map Tr.compile its in
  let out = Search_sim.Adversary.worst_case trs ~f:0 ~n:200. () in
  (* robot 0 covers ray 0 at ratio 1; the sweeper doubles between rays 1
     and 2 at ratio <= 9; overall a valid (if time-suboptimal) strategy *)
  check_bool "finite ratio" true (out.Search_sim.Adversary.ratio < 9.1);
  (* but worse than the optimal A(3,2,0) *)
  check_bool "worse than optimal" true
    (out.Search_sim.Adversary.ratio > F.a_mray ~m:3 ~k:2 ~f:0)

(* ------------------------------------------------------------------ *)
(* Group *)

let test_group_optimal_dispatch () =
  let g = Group.optimal (P.line ~k:4 ~f:1) in
  checkf "ratio-one regime" 1. g.Group.predicted_ratio;
  let g = Group.optimal (P.line ~k:3 ~f:1) in
  checkf6 "searching regime" (F.a_line ~k:3 ~f:1) g.Group.predicted_ratio;
  match Group.optimal (P.line ~k:2 ~f:2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsolvable accepted"

let test_group_line_zigzags () =
  let its = Group.line_zigzags ~labels:[| "a"; "b" |] [| doubling; doubling |] in
  check_int "two" 2 (Array.length its);
  Alcotest.(check string) "label" "a" (It.label its.(0))

(* ------------------------------------------------------------------ *)
(* properties *)

let gen_kf =
  (* line searching-regime pair: k robots, f faults, 0 < s <= k *)
  QCheck2.Gen.(
    let* f = int_range 0 3 in
    let* k = int_range (f + 1) ((2 * (f + 1)) - 1) in
    return (k, f))

let prop_mray_line_simulated_at_most_bound =
  QCheck2.Test.make ~count:12 ~name:"line exponential strategy meets its bound"
    gen_kf (fun (k, f) ->
      let s = Mray.make (P.line ~k ~f) in
      let trs = Array.map Tr.compile (Mray.itineraries s) in
      let out = Search_sim.Adversary.worst_case trs ~f ~n:100. () in
      out.Search_sim.Adversary.ratio <= Mray.predicted_ratio s +. 1e-6)

let prop_formula_vs_motion =
  (* the Section 2 closed formula vs motion-level pair visits on random
     geometric strategies *)
  QCheck2.Gen.(
    let* alpha = float_range 1.5 3. in
    let* x = float_range 0.6 20. in
    return (alpha, x))
  |> fun gen ->
  QCheck2.Test.make ~count:200 ~name:"pair-visit formula matches motion" gen
    (fun (alpha, x) ->
      let t = Turning.geometric ~alpha () in
      (* find i with t_{i-1} < x <= t_i *)
      let rec find i = if Turning.get t i >= x then i else find (i + 1) in
      let i = find 1 in
      match LZ.pair_visit_time t ~x with
      | Some got ->
          let want = LZ.pair_visit_time_formula t ~x ~i in
          Float.abs (got -. want) <= 1e-9 *. want
      | None -> false)

let prop_orc_cover_iff_interval =
  (* round-cover intervals are sound and complete w.r.t. visit times *)
  QCheck2.Gen.(
    let* alpha = float_range 1.6 2.8 in
    let* mu = float_range 1.5 6. in
    let* x = float_range 1. 30. in
    return (alpha, mu, x))
  |> fun gen ->
  QCheck2.Test.make ~count:300 ~name:"ORC interval membership = timely visit"
    gen (fun (alpha, mu, x) ->
      let t = Turning.geometric ~alpha () in
      let lambda = (2. *. mu) +. 1. in
      let in_some_interval =
        OR.cover_intervals t ~mu ~up_to:40
        |> List.exists (fun (_, iv) -> I.mem x iv)
      in
      let timely_visit =
        let rec probe i =
          if i > 40 then false
          else
            match OR.visit_time t ~i ~x with
            | Some time when time <= lambda *. x -> true
            | Some _ | None -> probe (i + 1)
        in
        probe 1
      in
      in_some_interval = timely_visit)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mray_line_simulated_at_most_bound;
      prop_mray_coverage_theorem;
      prop_formula_vs_motion;
      prop_orc_cover_iff_interval;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "strategy"
    [
      ( "turning",
        [
          tc "geometric" `Quick test_turning_geometric;
          tc "of_list_then" `Quick test_turning_of_list_then;
          tc "constant then geometric" `Quick test_turning_constant_then_geometric;
          tc "nondecreasing check" `Quick test_turning_nondecreasing;
          tc "scale" `Quick test_turning_scale;
          tc "negative rejected" `Quick test_turning_negative_rejected;
          tc "map indices" `Quick test_turning_map_indices;
          tc "compiled basic" `Quick test_compiled_basic;
          tc "compiled negative rejected" `Quick
            test_compiled_negative_rejected;
          tc "compiled = lazy (generated)" `Quick
            test_compiled_matches_lazy_generated;
          tc "compiled prefix walk" `Quick test_compiled_prefix_walk;
        ] );
      ( "line_zigzag",
        [
          tc "formula matches motion" `Quick test_lz_pair_visit_matches_formula;
          tc "cover threshold eq (3)" `Quick test_lz_cover_threshold;
          tc "fruitfulness" `Quick test_lz_fruitful;
          tc "intervals tile" `Quick test_lz_cover_intervals_tile;
          tc "lambda covers" `Quick test_lz_lambda_covers;
          tc "itinerary roundtrip" `Quick test_lz_itinerary_roundtrip;
        ] );
      ( "orc_round",
        [
          tc "visit time" `Quick test_or_visit_time;
          tc "threshold excludes current" `Quick test_or_threshold_excludes_current;
          tc "round cover" `Quick test_or_round_cover;
          tc "cover within window" `Quick test_or_cover_intervals_within;
          tc "itinerary" `Quick test_or_itinerary;
        ] );
      ( "normalize",
        [
          tc "identity on fruitful" `Quick test_normalize_orc_keeps_fruitful;
          tc "drops unfruitful" `Quick test_normalize_orc_drops_unfruitful;
          tc "line monotone repair" `Quick test_normalize_line_enforces_monotone;
          tc "diverges on hopeless" `Quick test_normalize_diverges_on_hopeless;
          tc "never shrinks cover" `Quick test_normalize_never_shrinks_cover;
        ] );
      ( "mray_exponential",
        [
          tc "defaults" `Quick test_mray_defaults;
          tc "rejects trivial" `Quick test_mray_rejects_trivial;
          tc "ray cycle" `Quick test_mray_ray_cycle;
          tc "geometric depths" `Quick test_mray_depths_geometric;
          tc "itineraries count" `Quick test_mray_itineraries_count;
          tc "assigned intervals cover" `Quick test_mray_assigned_intervals_cover;
          tc "exactly f+1 fold" `Quick test_mray_assigned_intervals_exactly_fplus1;
          tc "simulated ratio" `Quick test_mray_simulated_ratio_matches;
          tc "custom alpha worse" `Quick test_mray_custom_alpha_worse;
          tc "coverage theorem (integer)" `Quick test_mray_coverage_theorem_exact;
        ] );
      ( "cyclic",
        [
          tc "requires k < m" `Quick test_cyclic_requires_k_lt_m;
          tc "single robot m=3" `Quick test_cyclic_single_robot_ratio;
          tc "doubling cow" `Quick test_cyclic_doubling_cow;
        ] );
      ( "baseline",
        [
          tc "partition" `Quick test_baseline_partition;
          tc "partition regime check" `Quick test_baseline_partition_rejects_searching;
          tc "replication tolerates faults" `Quick
            test_baseline_replicated_tolerates_faults;
          tc "sweeper" `Quick test_baseline_sweeper;
        ] );
      ( "group",
        [
          tc "dispatch" `Quick test_group_optimal_dispatch;
          tc "line zigzags" `Quick test_group_line_zigzags;
        ] );
      ("properties", properties);
    ]
